//! Error types for the MapReduce engine and the simulated DFS, plus the
//! transient-vs-permanent classification the retry loop relies on.

use std::fmt;

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, MrError>;

/// Errors produced by the engine, the DFS, or user map/reduce functions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MrError {
    /// A DFS path does not exist.
    FileNotFound(String),
    /// A DFS path already exists and overwrite was not requested.
    FileExists(String),
    /// Data could not be decoded from its on-wire representation.
    Codec(String),
    /// A task exceeded its configured memory budget.
    ///
    /// This is the error the paper's OPRJ variant hits when the broadcast
    /// RID-pair list outgrows a map task's heap (Section 6.2).
    OutOfMemory {
        /// Human-readable description of the task that failed.
        task: String,
        /// Bytes the task attempted to hold.
        requested: u64,
        /// The per-task budget from [`crate::ClusterConfig::task_memory`].
        budget: u64,
        /// Whether a retry could plausibly succeed. Deterministic
        /// budget-accounting overflows (the [`crate::MemoryGauge`] path)
        /// are permanent: the same attempt charges the same bytes. An
        /// injected or environmental OOM (another task's pressure on a
        /// shared node) is transient.
        transient: bool,
    },
    /// A user map/reduce function reported a failure.
    TaskFailed(String),
    /// A user map/reduce function panicked; the panic was caught at the
    /// attempt boundary and the payload message preserved.
    TaskPanicked(String),
    /// The simulated node running the task went down mid-attempt (fault
    /// injection); the attempt is lost and re-scheduled elsewhere.
    NodeLost {
        /// The node that failed.
        node: usize,
        /// Human-readable description of the task that was running.
        task: String,
    },
    /// The job specification is inconsistent (e.g. zero reducers).
    InvalidConfig(String),
    /// A DFS file's content no longer matches its stored CRC — the
    /// simulated equivalent of HDFS detecting a corrupt block on read.
    /// Corrupt data is never returned to the caller.
    ChecksumMismatch {
        /// The corrupt file.
        path: String,
        /// CRC recorded when the file was written.
        expected: u32,
        /// CRC of the bytes actually present.
        found: u32,
    },
    /// The driver "crashed" at an injected crash point (see
    /// [`crate::FaultPlan::crash_after`] / [`crate::FaultPlan::crash_mid`]).
    /// Unlike a job failure, a driver crash leaves the output directory
    /// exactly as it was — partial parts, orphaned attempts and all — so
    /// recovery tests can resume over the surviving DFS.
    DriverCrash(String),
    /// The disk backing the DFS is full (`ENOSPC`, real or injected).
    /// Transient-after-cleanup: the engine runs a scavenger pass to free
    /// orphaned attempt/spill files and retries the attempt.
    StorageFull {
        /// The path whose write hit the full disk.
        path: String,
    },
    /// A retryable I/O error from the disk store (`EINTR`, injected
    /// `EIO`): the operation may succeed when re-issued, unlike a
    /// deterministic [`MrError::Codec`] decode failure.
    StorageIo {
        /// The path the operation targeted.
        path: String,
        /// The operation that failed (`read`, `write`, `rename`).
        op: String,
    },
}

/// Retry classification of an [`MrError`] — Hadoop distinguishes attempt
/// failures (retry the task) from job-level failures (fail immediately).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorClass {
    /// A retry could plausibly succeed: re-execute the attempt.
    Transient,
    /// Deterministic failure: every retry would fail identically.
    Permanent,
}

impl fmt::Display for MrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MrError::FileNotFound(p) => write!(f, "DFS file not found: {p}"),
            MrError::FileExists(p) => write!(f, "DFS file already exists: {p}"),
            MrError::Codec(msg) => write!(f, "codec error: {msg}"),
            MrError::OutOfMemory {
                task,
                requested,
                budget,
                ..
            } => write!(
                f,
                "task {task} out of memory: requested {requested} bytes, budget {budget} bytes"
            ),
            MrError::TaskFailed(msg) => write!(f, "task failed: {msg}"),
            MrError::TaskPanicked(msg) => write!(f, "task panicked: {msg}"),
            MrError::NodeLost { node, task } => {
                write!(f, "node {node} lost while running task {task}")
            }
            MrError::InvalidConfig(msg) => write!(f, "invalid job configuration: {msg}"),
            MrError::ChecksumMismatch {
                path,
                expected,
                found,
            } => write!(
                f,
                "DFS checksum mismatch reading {path}: expected {expected:08x}, found {found:08x}"
            ),
            MrError::DriverCrash(msg) => write!(f, "driver crashed (injected): {msg}"),
            MrError::StorageFull { path } => {
                write!(f, "storage full (ENOSPC) writing {path}")
            }
            MrError::StorageIo { path, op } => {
                write!(f, "storage I/O error during {op} of {path}")
            }
        }
    }
}

impl std::error::Error for MrError {}

impl MrError {
    /// True if this error is the memory-budget failure mode.
    pub fn is_out_of_memory(&self) -> bool {
        matches!(self, MrError::OutOfMemory { .. })
    }

    /// Classify for the retry loop. Transient errors are worth re-executing
    /// the attempt for; permanent errors fail the job immediately — retrying
    /// an `InvalidConfig` or a deterministic `Codec` failure burns attempts
    /// without any chance of a different outcome.
    pub fn class(&self) -> ErrorClass {
        match self {
            // Environmental / nondeterministic: a new attempt may succeed.
            // StorageFull is transient-after-cleanup: the retry path runs a
            // scavenger pass first, so a re-attempt writes into freed space.
            // StorageIo covers interrupted/flaky disk operations (EINTR,
            // injected EIO) where re-issuing the syscall can succeed.
            MrError::TaskFailed(_)
            | MrError::TaskPanicked(_)
            | MrError::NodeLost { .. }
            | MrError::StorageFull { .. }
            | MrError::StorageIo { .. } => ErrorClass::Transient,
            MrError::OutOfMemory { transient, .. } => {
                if *transient {
                    ErrorClass::Transient
                } else {
                    ErrorClass::Permanent
                }
            }
            // Deterministic: identical inputs produce the identical failure.
            // A checksum mismatch is permanent at the task level — every
            // re-read returns the same corrupt bytes; recovery happens one
            // layer up by re-executing the *producing* stage, not by
            // retrying the reader.
            MrError::FileNotFound(_)
            | MrError::FileExists(_)
            | MrError::Codec(_)
            | MrError::InvalidConfig(_)
            | MrError::ChecksumMismatch { .. }
            | MrError::DriverCrash(_) => ErrorClass::Permanent,
        }
    }

    /// True if a retry could plausibly succeed (see [`MrError::class`]).
    pub fn is_transient(&self) -> bool {
        self.class() == ErrorClass::Transient
    }

    /// True if this is an injected driver crash (see
    /// [`MrError::DriverCrash`]), the signal recovery harnesses resume on.
    pub fn is_driver_crash(&self) -> bool {
        matches!(self, MrError::DriverCrash(_))
    }

    /// True if this is a DFS data-integrity failure
    /// ([`MrError::ChecksumMismatch`]). Like a driver crash, it is
    /// recoverable one layer up: a resume invalidates the producing job's
    /// manifest and re-executes that stage.
    pub fn is_checksum_mismatch(&self) -> bool {
        matches!(self, MrError::ChecksumMismatch { .. })
    }

    /// True if this is a disk-full failure ([`MrError::StorageFull`]), the
    /// signal on which the engine runs an immediate scavenger pass before
    /// the retry.
    pub fn is_storage_full(&self) -> bool {
        matches!(self, MrError::StorageFull { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_stable() {
        let e = MrError::FileNotFound("/a/b".into());
        assert_eq!(e.to_string(), "DFS file not found: /a/b");
        let e = MrError::OutOfMemory {
            task: "reduce-3".into(),
            requested: 10,
            budget: 5,
            transient: false,
        };
        assert!(e.to_string().contains("reduce-3"));
        assert!(e.is_out_of_memory());
        assert!(!MrError::Codec("x".into()).is_out_of_memory());
        let e = MrError::TaskPanicked("boom".into());
        assert_eq!(e.to_string(), "task panicked: boom");
        let e = MrError::NodeLost {
            node: 2,
            task: "job/map-1".into(),
        };
        assert!(e.to_string().contains("node 2"));
        let e = MrError::ChecksumMismatch {
            path: "/out/part-00000".into(),
            expected: 0xdead_beef,
            found: 0x0bad_f00d,
        };
        assert_eq!(
            e.to_string(),
            "DFS checksum mismatch reading /out/part-00000: \
             expected deadbeef, found 0badf00d"
        );
        let e = MrError::DriverCrash("after job 2".into());
        assert_eq!(e.to_string(), "driver crashed (injected): after job 2");
        assert!(e.is_driver_crash());
        assert!(!MrError::Codec("x".into()).is_driver_crash());
        let e = MrError::StorageFull {
            path: "/out/_attempt-00001-0".into(),
        };
        assert_eq!(
            e.to_string(),
            "storage full (ENOSPC) writing /out/_attempt-00001-0"
        );
        let e = MrError::StorageIo {
            path: "/out/part-00001".into(),
            op: "rename".into(),
        };
        assert_eq!(
            e.to_string(),
            "storage I/O error during rename of /out/part-00001"
        );
    }

    #[test]
    fn classification_per_variant() {
        // Transient: user failures, panics, node loss, environmental OOM.
        assert!(MrError::TaskFailed("flaky".into()).is_transient());
        assert!(MrError::TaskPanicked("boom".into()).is_transient());
        assert!(MrError::NodeLost {
            node: 0,
            task: "t".into()
        }
        .is_transient());
        assert!(MrError::OutOfMemory {
            task: "t".into(),
            requested: 1,
            budget: 0,
            transient: true,
        }
        .is_transient());
        // Storage faults from the real disk store: ENOSPC is
        // transient-after-cleanup (scavenge then retry), EINTR/EIO is
        // retryable as-is.
        assert!(MrError::StorageFull {
            path: "/out/_attempt-00001-0".into()
        }
        .is_transient());
        assert!(MrError::StorageFull { path: "/x".into() }.is_storage_full());
        assert!(!MrError::Codec("x".into()).is_storage_full());
        assert!(MrError::StorageIo {
            path: "/out/part-00001".into(),
            op: "read".into()
        }
        .is_transient());
        // Permanent: deterministic failures retries cannot fix.
        assert!(!MrError::InvalidConfig("bad".into()).is_transient());
        assert!(!MrError::Codec("garbled".into()).is_transient());
        assert!(!MrError::FileNotFound("/x".into()).is_transient());
        assert!(!MrError::FileExists("/x".into()).is_transient());
        assert!(!MrError::OutOfMemory {
            task: "t".into(),
            requested: 2,
            budget: 1,
            transient: false,
        }
        .is_transient());
        assert!(!MrError::ChecksumMismatch {
            path: "/x".into(),
            expected: 1,
            found: 2,
        }
        .is_transient());
        assert!(!MrError::DriverCrash("mid job 0".into()).is_transient());
        assert_eq!(
            MrError::TaskFailed("x".into()).class(),
            ErrorClass::Transient
        );
        assert_eq!(MrError::Codec("x".into()).class(), ErrorClass::Permanent);
    }
}
