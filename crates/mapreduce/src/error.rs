//! Error types for the MapReduce engine and the simulated DFS.

use std::fmt;

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, MrError>;

/// Errors produced by the engine, the DFS, or user map/reduce functions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MrError {
    /// A DFS path does not exist.
    FileNotFound(String),
    /// A DFS path already exists and overwrite was not requested.
    FileExists(String),
    /// Data could not be decoded from its on-wire representation.
    Codec(String),
    /// A task exceeded its configured memory budget.
    ///
    /// This is the error the paper's OPRJ variant hits when the broadcast
    /// RID-pair list outgrows a map task's heap (Section 6.2).
    OutOfMemory {
        /// Human-readable description of the task that failed.
        task: String,
        /// Bytes the task attempted to hold.
        requested: u64,
        /// The per-task budget from [`crate::ClusterConfig::task_memory`].
        budget: u64,
    },
    /// A user map/reduce function reported a failure.
    TaskFailed(String),
    /// The job specification is inconsistent (e.g. zero reducers).
    InvalidConfig(String),
}

impl fmt::Display for MrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MrError::FileNotFound(p) => write!(f, "DFS file not found: {p}"),
            MrError::FileExists(p) => write!(f, "DFS file already exists: {p}"),
            MrError::Codec(msg) => write!(f, "codec error: {msg}"),
            MrError::OutOfMemory {
                task,
                requested,
                budget,
            } => write!(
                f,
                "task {task} out of memory: requested {requested} bytes, budget {budget} bytes"
            ),
            MrError::TaskFailed(msg) => write!(f, "task failed: {msg}"),
            MrError::InvalidConfig(msg) => write!(f, "invalid job configuration: {msg}"),
        }
    }
}

impl std::error::Error for MrError {}

impl MrError {
    /// True if this error is the memory-budget failure mode.
    pub fn is_out_of_memory(&self) -> bool {
        matches!(self, MrError::OutOfMemory { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_stable() {
        let e = MrError::FileNotFound("/a/b".into());
        assert_eq!(e.to_string(), "DFS file not found: /a/b");
        let e = MrError::OutOfMemory {
            task: "reduce-3".into(),
            requested: 10,
            budget: 5,
        };
        assert!(e.to_string().contains("reduce-3"));
        assert!(e.is_out_of_memory());
        assert!(!MrError::Codec("x".into()).is_out_of_memory());
    }
}
