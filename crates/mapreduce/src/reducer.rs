//! The `Reducer` trait, combiners, and adapters.

use std::marker::PhantomData;
use std::sync::Arc;

use crate::error::Result;
use crate::kv::{Key, Value};
use crate::task::{Emit, TaskContext};

/// A reduce function: `reduce(k2, list(v2)) -> list(k3, v3)`.
///
/// `values` streams the group's records as `(key, value)` pairs. The key is
/// repeated per record because with a grouping comparator coarser than the
/// sort comparator (Hadoop "secondary sort") every record in the group can
/// carry a *different* full key — the paper's PK kernel reads the length
/// component of the composite `(group, length)` key as values stream by.
pub trait Reducer: Clone + Send + 'static {
    /// Intermediate key type (must match the mapper's `OutKey`).
    type Key: Key;
    /// Intermediate value type (must match the mapper's `OutValue`).
    type InValue: Value;
    /// Output key type.
    type OutKey: Value;
    /// Output value type.
    type OutValue: Value;

    /// Called once per task before the first group.
    fn setup(&mut self, _ctx: &TaskContext) -> Result<()> {
        Ok(())
    }

    /// Called once per group (as defined by the job's grouping comparator).
    /// `key` is the first key of the group.
    fn reduce(
        &mut self,
        key: &Self::Key,
        values: &mut dyn Iterator<Item = (Self::Key, Self::InValue)>,
        out: &mut dyn Emit<Self::OutKey, Self::OutValue>,
        ctx: &TaskContext,
    ) -> Result<()>;

    /// Called once per task after the last group (OPTO sorts and emits the
    /// token list here).
    fn cleanup(
        &mut self,
        _out: &mut dyn Emit<Self::OutKey, Self::OutValue>,
        _ctx: &TaskContext,
    ) -> Result<()> {
        Ok(())
    }
}

/// Wrap a closure as a [`Reducer`].
pub struct ClosureReducer<K, IV, OK, OV, F> {
    f: F,
    #[allow(clippy::type_complexity)]
    _t: PhantomData<fn(K, IV) -> (OK, OV)>,
}

impl<K, IV, OK, OV, F: Clone> Clone for ClosureReducer<K, IV, OK, OV, F> {
    fn clone(&self) -> Self {
        ClosureReducer {
            f: self.f.clone(),
            _t: PhantomData,
        }
    }
}

impl<K, IV, OK, OV, F> ClosureReducer<K, IV, OK, OV, F>
where
    F: FnMut(
        &K,
        &mut dyn Iterator<Item = (K, IV)>,
        &mut dyn Emit<OK, OV>,
        &TaskContext,
    ) -> Result<()>,
{
    /// Build a reducer from the given closure.
    pub fn new(f: F) -> Self {
        ClosureReducer { f, _t: PhantomData }
    }
}

impl<K, IV, OK, OV, F> Reducer for ClosureReducer<K, IV, OK, OV, F>
where
    K: Key,
    IV: Value,
    OK: Value,
    OV: Value,
    F: FnMut(
            &K,
            &mut dyn Iterator<Item = (K, IV)>,
            &mut dyn Emit<OK, OV>,
            &TaskContext,
        ) -> Result<()>
        + Clone
        + Send
        + 'static,
{
    type Key = K;
    type InValue = IV;
    type OutKey = OK;
    type OutValue = OV;

    fn reduce(
        &mut self,
        key: &K,
        values: &mut dyn Iterator<Item = (K, IV)>,
        out: &mut dyn Emit<OK, OV>,
        ctx: &TaskContext,
    ) -> Result<()> {
        (self.f)(key, values, out, ctx)
    }
}

/// The identity reducer: emits every `(key, value)` of every group. Used by
/// sort-only jobs (BTO phase 2 with a single reducer).
pub struct IdentityReducer<K, V> {
    _t: PhantomData<fn(K, V)>,
}

impl<K, V> IdentityReducer<K, V> {
    /// Construct the identity reducer.
    pub fn new() -> Self {
        IdentityReducer { _t: PhantomData }
    }
}

impl<K, V> Default for IdentityReducer<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K, V> Clone for IdentityReducer<K, V> {
    fn clone(&self) -> Self {
        Self::new()
    }
}

impl<K: Key, V: Value> Reducer for IdentityReducer<K, V> {
    type Key = K;
    type InValue = V;
    type OutKey = K;
    type OutValue = V;

    fn reduce(
        &mut self,
        _key: &K,
        values: &mut dyn Iterator<Item = (K, V)>,
        out: &mut dyn Emit<K, V>,
        _ctx: &TaskContext,
    ) -> Result<()> {
        for (k, v) in values {
            out.emit(k, v)?;
        }
        Ok(())
    }
}

/// A combiner: a local reducer run over each spill's groups on the map side,
/// `combine(k2, list(v2)) -> list(v2)`. It must be an algebraic function —
/// applying it zero or more times must not change the reduce result.
pub type CombineFn<K, V> = Arc<dyn Fn(&K, Vec<V>) -> Vec<V> + Send + Sync>;

/// A summing combiner for numeric counts — the combiner BTO and OPTO use to
/// pre-aggregate `(token, 1)` pairs before the shuffle.
pub fn sum_combiner<K: Key>() -> CombineFn<K, u64> {
    Arc::new(|_k, values| vec![values.iter().sum()])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::Cache;
    use crate::counters::Counters;
    use crate::dfs::Dfs;
    use crate::memory::MemoryGauge;
    use crate::task::{Phase, VecEmitter};

    fn ctx() -> TaskContext {
        TaskContext::new(
            Phase::Reduce,
            0,
            0,
            1,
            Counters::new(),
            MemoryGauge::unlimited("t"),
            Cache::new(),
            Dfs::new(1, 64),
        )
    }

    #[test]
    fn closure_reducer_sums() {
        let mut r = ClosureReducer::new(
            |k: &String,
             values: &mut dyn Iterator<Item = (String, u64)>,
             out: &mut dyn Emit<String, u64>,
             _ctx: &TaskContext| {
                let total: u64 = values.map(|(_, v)| v).sum();
                out.emit(k.clone(), total)
            },
        );
        let mut out = VecEmitter::new();
        let key = "tok".to_string();
        let mut vals = vec![(key.clone(), 1u64), (key.clone(), 2), (key.clone(), 3)].into_iter();
        r.reduce(&key, &mut vals, &mut out, &ctx()).unwrap();
        assert_eq!(out.pairs, vec![("tok".to_string(), 6)]);
    }

    #[test]
    fn identity_reducer_echoes_group() {
        let mut r = IdentityReducer::<u32, String>::new();
        let mut out = VecEmitter::new();
        let mut vals = vec![(5u32, "a".to_string()), (5, "b".to_string())].into_iter();
        r.reduce(&5, &mut vals, &mut out, &ctx()).unwrap();
        assert_eq!(out.pairs.len(), 2);
    }

    #[test]
    fn sum_combiner_sums() {
        let c = sum_combiner::<String>();
        assert_eq!(c(&"k".to_string(), vec![1, 2, 3]), vec![6]);
        assert_eq!(c(&"k".to_string(), vec![]), vec![0]);
    }
}
