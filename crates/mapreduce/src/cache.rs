//! Broadcast side data — the analogue of Hadoop's distributed cache.
//!
//! Stage 2 broadcasts the global token ordering to every map task; the OPRJ
//! record-join variant broadcasts the full RID-pair list. In Hadoop each task
//! loads its own in-heap copy, which is exactly the cost that makes OPRJ run
//! out of memory at scale (Section 6.2). Here the value is materialized once
//! per job (tasks share the `Arc`), but each task that calls
//! [`Cache::get_or_load`] *charges its own memory gauge* for the declared
//! size, so the per-task heap pressure — and the resulting OOM — is modeled
//! faithfully.

use std::any::Any;
use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::error::{MrError, Result};
use crate::memory::MemoryGauge;

type Entry = (Arc<dyn Any + Send + Sync>, u64);

/// A per-job registry of shared side data.
#[derive(Clone, Default)]
pub struct Cache {
    inner: Arc<Mutex<HashMap<String, Entry>>>,
}

impl Cache {
    /// Create an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert a value with an explicit size in bytes (used for memory
    /// accounting by tasks that load it).
    pub fn put<T: Send + Sync + 'static>(&self, name: &str, value: T, bytes: u64) {
        self.inner
            .lock()
            .insert(name.to_string(), (Arc::new(value), bytes));
    }

    /// Fetch a previously inserted value together with its declared size.
    pub fn get<T: Send + Sync + 'static>(&self, name: &str) -> Option<(Arc<T>, u64)> {
        let guard = self.inner.lock();
        let (any, bytes) = guard.get(name)?;
        let arc = Arc::clone(any).downcast::<T>().ok()?;
        Some((arc, *bytes))
    }

    /// Fetch `name`, loading it with `loader` on first use. The loader
    /// returns the value and its size in bytes. The caller's `gauge` is
    /// charged for the size on **every** call — modeling one copy per task —
    /// and the charge failure is propagated so jobs like OPRJ fail with
    /// [`MrError::OutOfMemory`] when the side data exceeds a task's budget.
    pub fn get_or_load<T, F>(&self, name: &str, gauge: &MemoryGauge, loader: F) -> Result<Arc<T>>
    where
        T: Send + Sync + 'static,
        F: FnOnce() -> Result<(T, u64)>,
    {
        let mut guard = self.inner.lock();
        if let Some((any, bytes)) = guard.get(name) {
            let bytes = *bytes;
            let arc = Arc::clone(any)
                .downcast::<T>()
                .map_err(|_| MrError::Codec(format!("cache entry {name} has a different type")))?;
            drop(guard);
            gauge.charge(bytes)?;
            return Ok(arc);
        }
        let (value, bytes) = loader()?;
        let arc = Arc::new(value);
        guard.insert(
            name.to_string(),
            (Arc::clone(&arc) as Arc<dyn Any + Send + Sync>, bytes),
        );
        drop(guard);
        gauge.charge(bytes)?;
        Ok(arc)
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// True when the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip() {
        let cache = Cache::new();
        cache.put("tokens", vec![1u32, 2, 3], 12);
        let (v, bytes) = cache.get::<Vec<u32>>("tokens").unwrap();
        assert_eq!(*v, vec![1, 2, 3]);
        assert_eq!(bytes, 12);
        assert!(cache.get::<String>("tokens").is_none(), "wrong type");
        assert!(cache.get::<Vec<u32>>("missing").is_none());
    }

    #[test]
    fn get_or_load_loads_once_but_charges_every_task() {
        let cache = Cache::new();
        let mut loads = 0;
        let g1 = MemoryGauge::new("t1", 1000);
        let v1 = cache
            .get_or_load::<Vec<u32>, _>("side", &g1, || {
                loads += 1;
                Ok((vec![7; 10], 40))
            })
            .unwrap();
        assert_eq!(v1.len(), 10);
        assert_eq!(g1.used(), 40);

        let g2 = MemoryGauge::new("t2", 1000);
        let v2 = cache
            .get_or_load::<Vec<u32>, _>("side", &g2, || {
                loads += 1;
                Ok((vec![], 0))
            })
            .unwrap();
        assert_eq!(v2.len(), 10, "second task sees first load");
        assert_eq!(g2.used(), 40, "second task still charged");
        assert_eq!(loads, 1);
    }

    #[test]
    fn get_or_load_propagates_oom() {
        let cache = Cache::new();
        let g = MemoryGauge::new("small-task", 10);
        let err = cache
            .get_or_load::<Vec<u8>, _>("big", &g, || Ok((vec![0; 100], 100)))
            .unwrap_err();
        assert!(err.is_out_of_memory());
        // A task with enough budget can still use the already-loaded value.
        let g2 = MemoryGauge::new("big-task", 1000);
        let v = cache
            .get_or_load::<Vec<u8>, _>("big", &g2, || unreachable!())
            .unwrap();
        assert_eq!(v.len(), 100);
    }

    #[test]
    fn loader_errors_propagate_and_do_not_cache() {
        let cache = Cache::new();
        let g = MemoryGauge::unlimited("t");
        let err = cache
            .get_or_load::<u32, _>("x", &g, || Err(MrError::TaskFailed("nope".into())))
            .unwrap_err();
        assert!(matches!(err, MrError::TaskFailed(_)));
        assert!(cache.is_empty());
        // A later successful load works.
        let v = cache.get_or_load::<u32, _>("x", &g, || Ok((5, 4))).unwrap();
        assert_eq!(*v, 5);
    }
}
