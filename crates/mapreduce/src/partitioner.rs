//! Key partitioning, sorting, and grouping policies.
//!
//! Hadoop lets a job customize three things about intermediate keys and the
//! paper leans on all of them:
//!
//! * the **partitioner** (PK kernels partition composite `(group, length)`
//!   keys on the group component only),
//! * the **sort comparator** (keys sorted on the full composite key so
//!   record projections arrive in increasing length order),
//! * the **grouping comparator** (all lengths of one group form a single
//!   reduce call).

use std::cmp::Ordering;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use crate::kv::Key;

/// Decides which reduce task receives a key: `(key, num_partitions) -> p`.
pub type PartitionFn<K> = Arc<dyn Fn(&K, u32) -> u32 + Send + Sync>;

/// Total order used to sort intermediate keys within each partition.
pub type SortCmp<K> = Arc<dyn Fn(&K, &K) -> Ordering + Send + Sync>;

/// Equivalence that delimits reduce groups; coarser than or equal to the
/// sort order's equality.
pub type GroupEq<K> = Arc<dyn Fn(&K, &K) -> bool + Send + Sync>;

/// Deterministic hash for partitioning. `DefaultHasher::new()` uses fixed
/// SipHash keys, so partition assignment is stable across runs and
/// processes — required for reproducible experiments.
pub fn stable_hash<K: Hash>(key: &K) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    key.hash(&mut h);
    h.finish()
}

/// The default hash partitioner (Hadoop's `HashPartitioner`).
pub fn hash_partitioner<K: Key>() -> PartitionFn<K> {
    Arc::new(|key, parts| (stable_hash(key) % u64::from(parts)) as u32)
}

/// Partition on a projection of the key: `partition_by(|(g, _len)| *g)`
/// implements the paper's "custom partitioning function so that the
/// partitioning is done only on the group value".
pub fn partition_by<K, P, F>(project: F) -> PartitionFn<K>
where
    K: Key,
    P: Hash,
    F: Fn(&K) -> P + Send + Sync + 'static,
{
    Arc::new(move |key, parts| (stable_hash(&project(key)) % u64::from(parts)) as u32)
}

/// Natural `Ord`-based sort comparator.
pub fn natural_sort<K: Key>() -> SortCmp<K> {
    Arc::new(K::cmp)
}

/// Natural full-key equality grouping.
pub fn natural_grouping<K: Key>() -> GroupEq<K> {
    Arc::new(|a, b| a == b)
}

/// A total-order range partitioner (Hadoop's `TotalOrderPartitioner`):
/// `boundaries` are `P − 1` sorted split points; keys below `boundaries[0]`
/// go to partition 0, keys in `[boundaries[i-1], boundaries[i])` to
/// partition `i`, and so on. Combined with per-partition sorting, reading
/// the output parts in index order yields a **totally ordered** result with
/// many reducers — removing the single-reducer sort bottleneck the paper
/// observes in stage 1.
pub fn range_partitioner<K: Key + Sync>(boundaries: Vec<K>) -> PartitionFn<K> {
    debug_assert!(
        boundaries.windows(2).all(|w| w[0] <= w[1]),
        "boundaries must be sorted"
    );
    Arc::new(move |key, parts| {
        let p = boundaries.partition_point(|b| b <= key) as u32;
        p.min(parts.saturating_sub(1))
    })
}

/// Evenly-spaced boundary sample for [`range_partitioner`]: picks `parts−1`
/// quantile elements from a **sorted** key sample.
pub fn sample_boundaries<K: Key>(sorted_sample: &[K], parts: usize) -> Vec<K> {
    assert!(parts >= 1);
    if parts == 1 || sorted_sample.is_empty() {
        return Vec::new();
    }
    debug_assert!(sorted_sample.windows(2).all(|w| w[0] <= w[1]));
    let mut out = Vec::with_capacity(parts - 1);
    for i in 1..parts {
        let idx = i * sorted_sample.len() / parts;
        out.push(sorted_sample[idx.min(sorted_sample.len() - 1)].clone());
    }
    out.dedup();
    out
}

/// Group on a projection of the key: records whose projections are equal
/// share one reduce call even though their full keys differ (secondary
/// sort).
pub fn group_by<K, P, F>(project: F) -> GroupEq<K>
where
    K: Key,
    P: PartialEq,
    F: Fn(&K) -> P + Send + Sync + 'static,
{
    Arc::new(move |a, b| project(a) == project(b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_hash_is_deterministic() {
        assert_eq!(stable_hash(&42u64), stable_hash(&42u64));
        assert_ne!(stable_hash(&1u64), stable_hash(&2u64));
    }

    #[test]
    fn hash_partitioner_is_in_range_and_stable() {
        let p = hash_partitioner::<String>();
        for parts in [1u32, 2, 7, 40] {
            for s in ["a", "bb", "ccc"] {
                let v = p(&s.to_string(), parts);
                assert!(v < parts);
                assert_eq!(v, p(&s.to_string(), parts));
            }
        }
    }

    #[test]
    fn partition_by_ignores_rest_of_key() {
        let p = partition_by(|k: &(u32, u32)| k.0);
        for parts in [3u32, 16] {
            assert_eq!(p(&(7, 1), parts), p(&(7, 999), parts));
        }
    }

    #[test]
    fn group_by_projection() {
        let g = group_by(|k: &(u32, u32)| k.0);
        assert!(g(&(1, 5), &(1, 9)));
        assert!(!g(&(1, 5), &(2, 5)));
    }

    #[test]
    fn range_partitioner_respects_boundaries() {
        let p = range_partitioner(vec![10u32, 20, 30]);
        assert_eq!(p(&5, 4), 0);
        assert_eq!(p(&10, 4), 1);
        assert_eq!(p(&19, 4), 1);
        assert_eq!(p(&20, 4), 2);
        assert_eq!(p(&35, 4), 3);
        // Clamp when the job runs with fewer partitions than boundaries+1.
        assert_eq!(p(&35, 2), 1);
    }

    #[test]
    fn range_partitioner_preserves_global_order() {
        let sample: Vec<u32> = (0..100).map(|i| i * 3).collect();
        let bounds = sample_boundaries(&sample, 5);
        let p = range_partitioner(bounds);
        let parts: Vec<u32> = (0..300u32).map(|k| p(&k, 5)).collect();
        assert!(
            parts.windows(2).all(|w| w[0] <= w[1]),
            "monotone partitions"
        );
        assert_eq!(parts[0], 0);
        assert_eq!(parts[299], 4);
    }

    #[test]
    fn sample_boundaries_quantiles() {
        let sample: Vec<u32> = (0..100).collect();
        let b = sample_boundaries(&sample, 4);
        assert_eq!(b, vec![25, 50, 75]);
        assert!(sample_boundaries(&sample, 1).is_empty());
        assert!(sample_boundaries(&Vec::<u32>::new(), 4).is_empty());
        // Tiny samples dedup.
        let b = sample_boundaries(&[7u32, 7, 7], 4);
        assert_eq!(b, vec![7]);
    }

    #[test]
    fn natural_policies() {
        let s = natural_sort::<u32>();
        assert_eq!(s(&1, &2), Ordering::Less);
        let g = natural_grouping::<u32>();
        assert!(g(&3, &3));
        assert!(!g(&3, &4));
    }
}
