//! Process-isolated task execution: the driver side of
//! [`BackendKind::Process`](crate::BackendKind::Process) and the worker
//! program it talks to.
//!
//! The driver re-spawns **its own executable** as worker processes (the
//! way Hadoop's TaskTracker forks task JVMs from the same job jar) and
//! frames task assignments over the workers' stdin/stdout pipes using the
//! crate's own varint [`Codec`]. Closures cannot cross a process
//! boundary, so a remote-capable [`Job`](crate::Job) carries a
//! [`RemoteJobSpec`](crate::RemoteJobSpec): the name of a factory
//! registered on both sides (see [`register_job_factory`]) plus an opaque
//! payload from which the factory rebuilds the *entire* job — mapper,
//! reducer, policies, and inputs — against the shared disk-backed
//! [`Dfs`]. Both sides derive input splits from the same on-disk
//! filesystem state, so task ids line up by construction and the driver
//! never ships split data at all.
//!
//! # Protocol
//!
//! ```text
//! driver                                worker (spawned: current_exe,
//!   |                                     MR_PROCESS_WORKER=1)
//!   |--- handshake frame --------------->|
//!   |<-- "MR_WORKER_READY" banner line --|   (past the libtest preamble)
//!   |<-- handshake ok/err frame ---------|
//!   |--- MapReq{task, attempt} --------->|
//!   |<-- MapResp{stats, run refs, ...} --|   (spill runs live on disk)
//!   |--- ReduceReq{task, attempt, refs}->|
//!   |<-- ReduceResp{stats, ...} ---------|   (part committed worker-side)
//!   |--- Shutdown ---------------------->|
//! ```
//!
//! Every frame is a varint length prefix (capped at [`MAX_FRAME`]) plus a
//! `Codec`-encoded payload; responses are a tag byte (`0` ok / `1` err)
//! followed by the body or a fully-classified [`MrError`]. Map output
//! stays out of the pipes: workers write each spill run to a checksummed
//! `*.run` file under the DFS root's `shuffle/` directory and return
//! [`RunRef`]s; the reduce request routes those refs back to a worker,
//! which re-reads them under CRC and commits its part through the shared
//! DFS — the existing rename/manifest commit protocol, unchanged.
//!
//! # Failure classification
//!
//! A task-level error frame leaves the worker healthy: it is returned to
//! the pool and the error propagates with its original class (transient
//! errors retry through the same machinery as the in-process backends).
//! A *transport* failure — the pipe breaking, a truncated or undecodable
//! frame, a worker killed with `SIGKILL` — is classified as
//! [`MrError::NodeLost`]: the driver kills the handle, the retry runs on
//! a freshly spawned worker, and the job survives exactly like a lost
//! node in the simulated fault model.

use std::collections::BTreeMap;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::panic::AssertUnwindSafe;
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use parking_lot::{Mutex, RwLock};

use crate::backend::{ExecOutcome, ExecParams};
use crate::cluster::ClusterConfig;
use crate::codec::{write_varint, ByteReader, Codec};
use crate::counters::Counters;
use crate::dfs::{Crc32, Dfs};
use crate::engine::{
    panic_message, run_map_task, run_reduce_task, run_tasks, Cluster, MapItem, MapShared,
    MapTaskOut, ReduceItem, ReduceShared, ReduceTaskOut,
};
use crate::error::{MrError, Result};
use crate::faults::{Fault, FaultPlan};
use crate::input::SplitSource;
use crate::job::Job;
use crate::mapper::Mapper;
use crate::reducer::Reducer;
use crate::run::Run;
use crate::supervise::Supervisor;
use crate::task::Phase;
use crate::trace::{EventKind, HistogramSnapshot, Histograms, TopK, TraceEvent, TraceSink};

/// Environment variable that turns a spawned copy of this executable into
/// a worker process.
pub const WORKER_ENV: &str = "MR_PROCESS_WORKER";

/// Line a worker prints on stdout once it is ready to speak frames —
/// everything before it (the libtest preamble, for test binaries) is
/// skipped by the driver.
pub const WORKER_BANNER: &str = "MR_WORKER_READY";

/// Chaos knob: a worker with this environment variable set responds to
/// map task 0, attempt 0 with a deliberately undecodable frame — the
/// corrupted-pipe cell of the chaos suite.
pub const CORRUPT_FRAME_ENV: &str = "MR_CHAOS_CORRUPT_FRAME";

/// Chaos knob: a worker with this environment variable set hangs forever
/// (a real `sleep` loop, heartbeats suppressed) on map task 0, attempt 0 —
/// the hung-worker cell of the supervision suite. Only survivable with
/// [`ClusterConfig::task_timeout_secs`] set.
pub const HANG_ENV: &str = "MR_CHAOS_HANG";

/// Upper bound on a single frame's declared length. A corrupt length
/// prefix must fail here, not in an allocation.
const MAX_FRAME: u64 = 1 << 30;

/// Magic prefix of an on-disk spill-run file.
const RUN_MAGIC: &[u8; 8] = b"MRRUNv1\0";

// ---------------------------------------------------------------------------
// Wire types
// ---------------------------------------------------------------------------

macro_rules! wire_codec {
    ($t:ident { $($f:ident),+ $(,)? }) => {
        impl Codec for $t {
            fn encode(&self, buf: &mut Vec<u8>) {
                $(self.$f.encode(buf);)+
            }
            fn decode(r: &mut ByteReader<'_>) -> Result<Self> {
                Ok($t { $($f: Codec::decode(r)?),+ })
            }
        }
    };
}

/// Pointer to one spill run parked on disk: file name (relative to the
/// job's shuffle directory), record count, and payload length in bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct RunRef {
    file: String,
    records: u64,
    len: u64,
}
wire_codec!(RunRef { file, records, len });

/// [`FaultPlan`] shipped field-wise — its `Display` form is not
/// re-parseable, and the worker must reach the *exact* same pure
/// `decide()` outcomes as the driver would in-process.
#[derive(Debug, Clone)]
struct FaultWire {
    seed: u64,
    p_transient: f64,
    p_panic: f64,
    p_oom: f64,
    p_late: f64,
    p_straggler: f64,
    p_hang: f64,
    p_slow_heartbeat: f64,
    straggler_factor: f64,
    dead_node: Option<u64>,
    crash_after: Option<u64>,
    crash_mid: Option<u64>,
    corrupt_path: Option<String>,
}
wire_codec!(FaultWire {
    seed,
    p_transient,
    p_panic,
    p_oom,
    p_late,
    p_straggler,
    p_hang,
    p_slow_heartbeat,
    straggler_factor,
    dead_node,
    crash_after,
    crash_mid,
    corrupt_path,
});

impl FaultWire {
    fn from_plan(p: &FaultPlan) -> Self {
        FaultWire {
            seed: p.seed,
            p_transient: p.p_transient,
            p_panic: p.p_panic,
            p_oom: p.p_oom,
            p_late: p.p_late,
            p_straggler: p.p_straggler,
            p_hang: p.p_hang,
            p_slow_heartbeat: p.p_slow_heartbeat,
            straggler_factor: p.straggler_factor,
            dead_node: p.dead_node.map(|n| n as u64),
            crash_after: p.crash_after.map(|n| n as u64),
            crash_mid: p.crash_mid.map(|n| n as u64),
            corrupt_path: p.corrupt_path.clone(),
        }
    }

    fn into_plan(self) -> FaultPlan {
        FaultPlan {
            seed: self.seed,
            p_transient: self.p_transient,
            p_panic: self.p_panic,
            p_oom: self.p_oom,
            p_late: self.p_late,
            p_straggler: self.p_straggler,
            p_hang: self.p_hang,
            p_slow_heartbeat: self.p_slow_heartbeat,
            straggler_factor: self.straggler_factor,
            dead_node: self.dead_node.map(|n| n as usize),
            crash_after: self.crash_after.map(|n| n as usize),
            crash_mid: self.crash_mid.map(|n| n as usize),
            corrupt_path: self.corrupt_path,
            // Storage faults (enospc/eio/torn) stay driver-side by design:
            // the driver's Dfs handle injects them, so worker processes get
            // the default (quiet) storage keys and a clean disk view.
            ..FaultPlan::default()
        }
    }
}

/// [`HistogramSnapshot`] on the wire.
#[derive(Debug, Clone)]
struct HistWire {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    zeros: u64,
    buckets: Vec<(i32, u64)>,
}
wire_codec!(HistWire {
    count,
    sum,
    min,
    max,
    zeros,
    buckets,
});

impl HistWire {
    fn from_snapshot(s: &HistogramSnapshot) -> Self {
        HistWire {
            count: s.count,
            sum: s.sum,
            min: s.min,
            max: s.max,
            zeros: s.zeros,
            buckets: s.buckets.clone(),
        }
    }

    fn into_snapshot(self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count,
            sum: self.sum,
            min: self.min,
            max: self.max,
            zeros: self.zeros,
            buckets: self.buckets,
        }
    }
}

/// [`TopK`] on the wire: capacity plus the raw entries, in insertion
/// order. `entries.len() <= capacity` always holds, so rebuilding with
/// `new` + `add` reproduces the original state exactly.
#[derive(Debug, Clone)]
struct TopKWire {
    capacity: u64,
    entries: Vec<(String, u64)>,
}
wire_codec!(TopKWire { capacity, entries });

impl TopKWire {
    fn from_topk(t: &TopK) -> Self {
        TopKWire {
            capacity: t.capacity() as u64,
            entries: t.entries().to_vec(),
        }
    }

    fn into_topk(self) -> TopK {
        let mut t = TopK::new((self.capacity as usize).max(1));
        for (label, n) in &self.entries {
            t.add(label, *n);
        }
        t
    }
}

/// First frame the driver sends: everything a worker needs to rebuild the
/// job and a matching single-threaded cluster over the shared disk DFS.
struct HandshakeReq {
    job_name: String,
    factory: String,
    payload: Vec<u8>,
    nodes: u64,
    block_size: u64,
    dfs_root: String,
    num_reducers: u64,
    spill_buffer: u64,
    merge_factor: u64,
    task_memory: Option<u64>,
    heavy_hitter_top_k: u64,
    heavy_hitter_warn_share: f64,
    shuffle_tag: String,
    faults: Option<FaultWire>,
    /// Milliseconds between worker heartbeat frames while a task runs;
    /// `0` disables the heartbeat thread entirely (supervision off).
    heartbeat_interval_ms: u64,
    /// Mirror of [`crate::ClusterConfig::durable_commits`]: workers must
    /// follow the same write→sync→rename→dir-sync discipline as the driver
    /// or task-level part commits would be weaker than job-level ones.
    durable: bool,
}
wire_codec!(HandshakeReq {
    job_name,
    factory,
    payload,
    nodes,
    block_size,
    dfs_root,
    num_reducers,
    spill_buffer,
    merge_factor,
    task_memory,
    heavy_hitter_top_k,
    heavy_hitter_warn_share,
    shuffle_tag,
    faults,
    heartbeat_interval_ms,
    durable,
});

struct MapReq {
    task_id: u64,
    attempt: u64,
}
wire_codec!(MapReq { task_id, attempt });

struct ReduceReq {
    task_id: u64,
    attempt: u64,
    /// Refs in canonical run presentation order: (map task, spill index).
    refs: Vec<RunRef>,
}
wire_codec!(ReduceReq {
    task_id,
    attempt,
    refs
});

/// A completed map attempt: the [`MapTaskOut`] stats (runs replaced by
/// on-disk refs, outer index = partition) plus the worker's counter and
/// histogram deltas for this request.
struct MapResp {
    duration: f64,
    base_duration: f64,
    node_hint: Option<u64>,
    node: u64,
    input_bytes: u64,
    input_records: u64,
    output_records: u64,
    spills: u64,
    combine_in: u64,
    combine_out: u64,
    refs: Vec<Vec<RunRef>>,
    counters: Vec<(String, u64)>,
    histograms: Vec<(String, HistWire)>,
}
wire_codec!(MapResp {
    duration,
    base_duration,
    node_hint,
    node,
    input_bytes,
    input_records,
    output_records,
    spills,
    combine_in,
    combine_out,
    refs,
    counters,
    histograms,
});

/// A completed reduce attempt (its part is already committed on the
/// shared DFS) plus the worker's metric deltas.
struct ReduceResp {
    node: u64,
    duration: f64,
    base_duration: f64,
    input_bytes: u64,
    groups: u64,
    input_records: u64,
    output_records: u64,
    merge_passes: u64,
    group_records: HistWire,
    key_counts: Option<TopKWire>,
    counters: Vec<(String, u64)>,
    histograms: Vec<(String, HistWire)>,
}
wire_codec!(ReduceResp {
    node,
    duration,
    base_duration,
    input_bytes,
    groups,
    input_records,
    output_records,
    merge_passes,
    group_records,
    key_counts,
    counters,
    histograms,
});

enum Request {
    Map(MapReq),
    Reduce(ReduceReq),
    Shutdown,
}

impl Codec for Request {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            Request::Map(m) => {
                buf.push(1);
                m.encode(buf);
            }
            Request::Reduce(r) => {
                buf.push(2);
                r.encode(buf);
            }
            Request::Shutdown => buf.push(3),
        }
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self> {
        match r.take_u8()? {
            1 => Ok(Request::Map(MapReq::decode(r)?)),
            2 => Ok(Request::Reduce(ReduceReq::decode(r)?)),
            3 => Ok(Request::Shutdown),
            t => Err(MrError::Codec(format!("invalid request tag {t}"))),
        }
    }
}

impl Codec for MrError {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            MrError::FileNotFound(s) => {
                buf.push(0);
                s.encode(buf);
            }
            MrError::FileExists(s) => {
                buf.push(1);
                s.encode(buf);
            }
            MrError::Codec(s) => {
                buf.push(2);
                s.encode(buf);
            }
            MrError::OutOfMemory {
                task,
                requested,
                budget,
                transient,
            } => {
                buf.push(3);
                task.encode(buf);
                requested.encode(buf);
                budget.encode(buf);
                transient.encode(buf);
            }
            MrError::TaskFailed(s) => {
                buf.push(4);
                s.encode(buf);
            }
            MrError::TaskPanicked(s) => {
                buf.push(5);
                s.encode(buf);
            }
            MrError::NodeLost { node, task } => {
                buf.push(6);
                (*node as u64).encode(buf);
                task.encode(buf);
            }
            MrError::InvalidConfig(s) => {
                buf.push(7);
                s.encode(buf);
            }
            MrError::ChecksumMismatch {
                path,
                expected,
                found,
            } => {
                buf.push(8);
                path.encode(buf);
                expected.encode(buf);
                found.encode(buf);
            }
            MrError::DriverCrash(s) => {
                buf.push(9);
                s.encode(buf);
            }
            MrError::StorageFull { path } => {
                buf.push(10);
                path.encode(buf);
            }
            MrError::StorageIo { path, op } => {
                buf.push(11);
                path.encode(buf);
                op.encode(buf);
            }
        }
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self> {
        Ok(match r.take_u8()? {
            0 => MrError::FileNotFound(String::decode(r)?),
            1 => MrError::FileExists(String::decode(r)?),
            2 => MrError::Codec(String::decode(r)?),
            3 => MrError::OutOfMemory {
                task: String::decode(r)?,
                requested: u64::decode(r)?,
                budget: u64::decode(r)?,
                transient: bool::decode(r)?,
            },
            4 => MrError::TaskFailed(String::decode(r)?),
            5 => MrError::TaskPanicked(String::decode(r)?),
            6 => MrError::NodeLost {
                node: u64::decode(r)? as usize,
                task: String::decode(r)?,
            },
            7 => MrError::InvalidConfig(String::decode(r)?),
            8 => MrError::ChecksumMismatch {
                path: String::decode(r)?,
                expected: u32::decode(r)?,
                found: u32::decode(r)?,
            },
            9 => MrError::DriverCrash(String::decode(r)?),
            10 => MrError::StorageFull {
                path: String::decode(r)?,
            },
            11 => MrError::StorageIo {
                path: String::decode(r)?,
                op: String::decode(r)?,
            },
            t => return Err(MrError::Codec(format!("invalid error tag {t}"))),
        })
    }
}

// ---------------------------------------------------------------------------
// Frame I/O
// ---------------------------------------------------------------------------

fn pipe_err(what: &str, e: &io::Error) -> MrError {
    MrError::Codec(format!("worker pipe {what}: {e}"))
}

fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<()> {
    let mut head = Vec::with_capacity(10);
    write_varint(payload.len() as u64, &mut head);
    w.write_all(&head)
        .and_then(|()| w.write_all(payload))
        .and_then(|()| w.flush())
        .map_err(|e| pipe_err("write", &e))
}

/// Read one length-prefixed frame. `Ok(None)` means the peer closed the
/// pipe cleanly at a frame boundary; anything malformed — an overlong or
/// overflowing varint, a length beyond [`MAX_FRAME`], a mid-frame EOF —
/// is a transport error.
fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>> {
    let mut len: u64 = 0;
    let mut shift = 0u32;
    loop {
        let mut byte = [0u8; 1];
        match r.read_exact(&mut byte) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof && shift == 0 => return Ok(None),
            Err(e) => return Err(pipe_err("read length", &e)),
        }
        let b = byte[0];
        let bits = u64::from(b & 0x7F);
        if shift == 63 && bits > 1 {
            return Err(MrError::Codec("frame length varint overflows u64".into()));
        }
        len |= bits << shift;
        if b & 0x80 == 0 {
            break;
        }
        shift += 7;
        if shift > 63 {
            return Err(MrError::Codec("frame length varint too long".into()));
        }
    }
    if len > MAX_FRAME {
        return Err(MrError::Codec(format!(
            "frame length {len} exceeds cap {MAX_FRAME}"
        )));
    }
    let mut buf = vec![0u8; len as usize];
    r.read_exact(&mut buf)
        .map_err(|e| pipe_err("read body", &e))?;
    Ok(Some(buf))
}

/// Worker→driver response envelope: tag `0` + body, tag `1` + a
/// classified [`MrError`] from a failed (but cleanly handled) task, or a
/// bare tag `2` — a heartbeat interleaved with task execution, consumed
/// by the driver's read loop without ending the request.
const RESP_OK: u8 = 0;
const RESP_ERR: u8 = 1;
const RESP_HEARTBEAT: u8 = 2;

fn write_ok_frame<T: Codec>(w: &mut impl Write, body: &T) -> Result<()> {
    let mut buf = Vec::with_capacity(64);
    buf.push(RESP_OK);
    body.encode(&mut buf);
    write_frame(w, &buf)
}

fn write_err_frame(w: &mut impl Write, e: &MrError) -> Result<()> {
    let mut buf = Vec::with_capacity(64);
    buf.push(RESP_ERR);
    e.encode(&mut buf);
    write_frame(w, &buf)
}

/// Driver side: read a response, invoking `on_heartbeat` for every
/// interleaved heartbeat frame. Outer `Err` is a transport failure (the
/// worker is unusable); inner `Err` is a task-level error from a healthy
/// worker.
fn read_response_with<T: Codec>(
    r: &mut impl Read,
    mut on_heartbeat: impl FnMut(),
) -> Result<std::result::Result<T, MrError>> {
    loop {
        let Some(frame) = read_frame(r)? else {
            return Err(MrError::Codec("worker closed pipe mid-conversation".into()));
        };
        let mut rd = ByteReader::new(&frame);
        match rd.take_u8()? {
            RESP_OK => {
                let body = T::decode(&mut rd)?;
                if !rd.is_empty() {
                    return Err(MrError::Codec(format!(
                        "{} trailing bytes in response frame",
                        rd.remaining()
                    )));
                }
                return Ok(Ok(body));
            }
            RESP_ERR => return Ok(Err(MrError::decode(&mut rd)?)),
            RESP_HEARTBEAT if rd.is_empty() => on_heartbeat(),
            t => return Err(MrError::Codec(format!("invalid response tag {t}"))),
        }
    }
}

fn read_response<T: Codec>(r: &mut impl Read) -> Result<std::result::Result<T, MrError>> {
    read_response_with(r, || {})
}

// ---------------------------------------------------------------------------
// Spill-run files
// ---------------------------------------------------------------------------

/// Write one spill run to `dir/name`: magic, record count, payload CRC,
/// payload length, payload.
fn write_run_file(dir: &Path, name: &str, run: &Run) -> Result<RunRef> {
    let mut buf = Vec::with_capacity(run.data.len() + 32);
    buf.extend_from_slice(RUN_MAGIC);
    write_varint(run.records as u64, &mut buf);
    let mut crc = Crc32::new();
    crc.update(&run.data);
    crc.finish().encode(&mut buf);
    write_varint(run.data.len() as u64, &mut buf);
    buf.extend_from_slice(&run.data);
    let path = dir.join(name);
    std::fs::write(&path, &buf)
        .map_err(|e| MrError::Codec(format!("write spill run {}: {e}", path.display())))?;
    Ok(RunRef {
        file: name.to_string(),
        records: run.records as u64,
        len: run.data.len() as u64,
    })
}

/// Re-read a spill run under CRC. Structural damage decodes to a
/// [`MrError::Codec`]; payload damage to [`MrError::ChecksumMismatch`] —
/// both permanent, so a corrupt shuffle file fails the job cleanly
/// instead of committing wrong bytes.
fn read_run_file(dir: &Path, rref: &RunRef) -> Result<Run> {
    let path = dir.join(&rref.file);
    let bytes = std::fs::read(&path).map_err(|e| match e.kind() {
        io::ErrorKind::NotFound => MrError::FileNotFound(path.display().to_string()),
        _ => MrError::Codec(format!("read spill run {}: {e}", path.display())),
    })?;
    let bad = |why: &str| MrError::Codec(format!("corrupt spill run {}: {why}", path.display()));
    if bytes.len() < RUN_MAGIC.len() || &bytes[..RUN_MAGIC.len()] != RUN_MAGIC {
        return Err(bad("bad magic"));
    }
    let mut r = ByteReader::new(&bytes[RUN_MAGIC.len()..]);
    let records = usize::decode(&mut r).map_err(|_| bad("bad record count"))?;
    let expected = u32::decode(&mut r).map_err(|_| bad("bad crc field"))?;
    let len = usize::decode(&mut r).map_err(|_| bad("bad length field"))?;
    if len != r.remaining() {
        return Err(bad("length does not match payload"));
    }
    let payload = r.take(len)?;
    let mut crc = Crc32::new();
    crc.update(payload);
    let found = crc.finish();
    if found != expected {
        return Err(MrError::ChecksumMismatch {
            path: path.display().to_string(),
            expected,
            found,
        });
    }
    Ok(Run {
        data: bytes::Bytes::from(payload.to_vec()),
        records,
    })
}

// ---------------------------------------------------------------------------
// Job factory registry (worker side)
// ---------------------------------------------------------------------------

/// What the worker loop needs from a rebuilt job, type-erased so the
/// registry can hold factories for jobs of any key/value types.
trait WorkerJob: Send {
    fn set_num_reducers(&mut self, n: usize);
    fn run_map(&mut self, cluster: &Cluster, req: &MapReq, spill_dir: &Path) -> Result<MapResp>;
    fn run_reduce(
        &mut self,
        cluster: &Cluster,
        req: &ReduceReq,
        spill_dir: &Path,
    ) -> Result<ReduceResp>;
}

type FactoryFn = Arc<dyn Fn(&[u8], &Dfs) -> Result<Box<dyn WorkerJob>> + Send + Sync>;

fn registry() -> &'static RwLock<BTreeMap<String, FactoryFn>> {
    static REGISTRY: OnceLock<RwLock<BTreeMap<String, FactoryFn>>> = OnceLock::new();
    REGISTRY.get_or_init(|| RwLock::new(BTreeMap::new()))
}

/// Register a job factory under `name`, on both the driver and (crucially)
/// in the worker entry point of the executable that will be re-spawned.
///
/// The factory receives the [`RemoteJobSpec`](crate::RemoteJobSpec)
/// payload and the shared disk-backed [`Dfs`], and must rebuild the
/// *same* job the driver is running — including its inputs, typically via
/// [`text_input`](crate::text_input)/[`seq_input`](crate::seq_input) on
/// the given DFS. Split derivation is deterministic (sorted file
/// resolution, blocks in file order), so the worker's task ids match the
/// driver's. Registering the same name again replaces the old factory.
pub fn register_job_factory<M, R, F>(name: &str, build: F)
where
    M: Mapper,
    R: Reducer<Key = M::OutKey, InValue = M::OutValue> + Clone,
    F: Fn(&[u8], &Dfs) -> Result<Job<M, R>> + Send + Sync + 'static,
{
    let factory: FactoryFn = Arc::new(move |payload, dfs| {
        let job = build(payload, dfs)?;
        Ok(Box::new(JobWorker {
            num_reducers: job.num_reducers.unwrap_or(1),
            job,
        }) as Box<dyn WorkerJob>)
    });
    registry().write().insert(name.to_string(), factory);
}

/// A rebuilt job plus the resolved reducer count, executing one request
/// at a time against the worker's local single-threaded cluster.
struct JobWorker<M, R>
where
    M: Mapper,
    R: Reducer<Key = M::OutKey, InValue = M::OutValue>,
{
    job: Job<M, R>,
    num_reducers: usize,
}

impl<M, R> JobWorker<M, R>
where
    M: Mapper,
    R: Reducer<Key = M::OutKey, InValue = M::OutValue> + Clone,
{
    fn map_shared<'a>(
        &'a self,
        cluster: &'a Cluster,
        counters: &'a Counters,
        histograms: &'a Histograms,
    ) -> MapShared<'a, M> {
        MapShared {
            partitioner: &self.job.partitioner,
            sort_cmp: &self.job.sort_cmp,
            combiner: self.job.combiner.as_ref(),
            counters,
            histograms,
            cache: &self.job.cache,
            dfs: cluster.dfs(),
            cluster,
            num_reducers: self.num_reducers,
            job_name: &self.job.name,
        }
    }
}

impl<M, R> WorkerJob for JobWorker<M, R>
where
    M: Mapper,
    R: Reducer<Key = M::OutKey, InValue = M::OutValue> + Clone,
{
    fn set_num_reducers(&mut self, n: usize) {
        self.num_reducers = n;
        self.job.num_reducers = Some(n);
    }

    fn run_map(&mut self, cluster: &Cluster, req: &MapReq, spill_dir: &Path) -> Result<MapResp> {
        let task_id = req.task_id as usize;
        let attempt = req.attempt as usize;
        if task_id >= self.job.inputs.len() {
            return Err(MrError::InvalidConfig(format!(
                "map task {task_id} out of range: job {} has {} input splits",
                self.job.name,
                self.job.inputs.len()
            )));
        }
        let counters = Counters::new();
        let histograms = Histograms::new();
        counters.get("mr.process.worker_map_tasks").incr();
        // Move the split out of the job for the borrow `MapItem` needs,
        // and put it back even if the attempt panics — the next attempt
        // of this task may land on this same worker.
        let split = std::mem::replace(
            &mut self.job.inputs[task_id],
            SplitSource::from_records("swapped-out", Vec::new()),
        );
        let item = MapItem {
            task_id,
            split,
            mapper: self.job.mapper.clone(),
        };
        let shared = self.map_shared(cluster, &counters, &histograms);
        let result =
            std::panic::catch_unwind(AssertUnwindSafe(|| run_map_task(&item, attempt, &shared)));
        // Release the borrows `shared` holds before the split goes back.
        let _ = shared;
        self.job.inputs[task_id] = item.split;
        let mut out = match result {
            Ok(r) => r?,
            Err(payload) => return Err(MrError::TaskPanicked(panic_message(&*payload))),
        };
        // Shuffle transport, process flavour: spill runs travel between
        // worker processes as files in the spill directory. Timing the
        // write loop into the per-request counters rides the existing
        // counter merge back to the driver's job counters.
        let transport_start = Instant::now();
        let mut transport_bytes = 0u64;
        let mut refs: Vec<Vec<RunRef>> = Vec::with_capacity(out.runs.len());
        for (p, runs) in out.runs.drain(..).enumerate() {
            let mut part = Vec::with_capacity(runs.len());
            for (s, run) in runs.iter().enumerate() {
                let name = format!("map-{task_id:05}-a{attempt}-p{p:03}-s{s:03}.run");
                transport_bytes += run.len_bytes() as u64;
                part.push(write_run_file(spill_dir, &name, run)?);
            }
            refs.push(part);
        }
        counters
            .get(crate::profile::BUSY_SHUFFLE_TRANSPORT_US)
            .add(crate::profile::secs_to_us(
                transport_start.elapsed().as_secs_f64(),
            ));
        counters
            .get(crate::profile::BUSY_SHUFFLE_TRANSPORT_BYTES)
            .add(transport_bytes);
        Ok(MapResp {
            duration: out.duration,
            base_duration: out.base_duration,
            node_hint: out.node_hint.map(|n| n as u64),
            node: out.node as u64,
            input_bytes: out.input_bytes,
            input_records: out.input_records,
            output_records: out.output_records,
            spills: out.spills,
            combine_in: out.combine_in,
            combine_out: out.combine_out,
            refs,
            counters: counters.snapshot(),
            histograms: histograms
                .snapshot()
                .iter()
                .map(|(n, s)| (n.clone(), HistWire::from_snapshot(s)))
                .collect(),
        })
    }

    fn run_reduce(
        &mut self,
        cluster: &Cluster,
        req: &ReduceReq,
        spill_dir: &Path,
    ) -> Result<ReduceResp> {
        let task_id = req.task_id as usize;
        let attempt = req.attempt as usize;
        if task_id >= self.num_reducers {
            return Err(MrError::InvalidConfig(format!(
                "reduce task {task_id} out of range: job {} has {} reducers",
                self.job.name, self.num_reducers
            )));
        }
        let counters = Counters::new();
        let histograms = Histograms::new();
        counters.get("mr.process.worker_reduce_tasks").incr();
        // Reduce-side shuffle transport: reading the run files back.
        let transport_start = Instant::now();
        let mut runs = Vec::with_capacity(req.refs.len());
        for rref in &req.refs {
            runs.push(read_run_file(spill_dir, rref)?);
        }
        counters
            .get(crate::profile::BUSY_SHUFFLE_TRANSPORT_US)
            .add(crate::profile::secs_to_us(
                transport_start.elapsed().as_secs_f64(),
            ));
        let item = ReduceItem::<M, R>::new(task_id, runs, self.job.reducer.clone());
        let shared = ReduceShared::<M, R> {
            sort_cmp: &self.job.sort_cmp,
            group_eq: &self.job.group_eq,
            counters: &counters,
            histograms: &histograms,
            cache: &self.job.cache,
            dfs: cluster.dfs(),
            cluster,
            num_reducers: self.num_reducers,
            output: &self.job.output,
            job_name: &self.job.name,
            key_label: self.job.key_label.as_ref(),
        };
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            run_reduce_task(&item, attempt, &shared)
        }));
        let out = match result {
            Ok(r) => r?,
            Err(payload) => return Err(MrError::TaskPanicked(panic_message(&*payload))),
        };
        Ok(ReduceResp {
            node: out.node as u64,
            duration: out.duration,
            base_duration: out.base_duration,
            input_bytes: out.input_bytes,
            groups: out.groups,
            input_records: out.input_records,
            output_records: out.output_records,
            merge_passes: out.merge_passes,
            group_records: HistWire::from_snapshot(&out.group_records),
            key_counts: out.key_counts.as_ref().map(TopKWire::from_topk),
            counters: counters.snapshot(),
            histograms: histograms
                .snapshot()
                .iter()
                .map(|(n, s)| (n.clone(), HistWire::from_snapshot(s)))
                .collect(),
        })
    }
}

// ---------------------------------------------------------------------------
// Worker process
// ---------------------------------------------------------------------------

/// Worker entry point. Call this from your executable — first thing in a
/// CLI `main`, or from a `#[test] fn process_worker_entry()` in a test
/// binary — **after** registering the job factories the driver will name.
///
/// When [`WORKER_ENV`] is unset this returns immediately (so the test
/// passes trivially in a normal run); when set, it speaks the worker
/// protocol on stdin/stdout until shutdown or EOF and then exits the
/// process.
pub fn process_worker_main() {
    if std::env::var_os(WORKER_ENV).is_none() {
        return;
    }
    // Injected user-code panics are routine under fault plans; the driver
    // gets them as classified error frames, so the default hook's
    // stack-trace noise on stderr helps no one.
    std::panic::set_hook(Box::new(|_| {}));
    let code = match worker_serve() {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("[mr-worker] fatal: {e}");
            1
        }
    };
    std::process::exit(code);
}

/// Shared heartbeat state between the worker's serve loop and its
/// heartbeat thread.
struct Pulse {
    /// A task is in flight (heartbeats are only meaningful — and only
    /// read — while the driver blocks on a response).
    busy: std::sync::atomic::AtomicBool,
    /// Chaos: suppress heartbeats even while busy (the slow-heartbeat
    /// and hang cells).
    suppress: std::sync::atomic::AtomicBool,
    /// Worker is shutting down; the heartbeat thread exits.
    stop: std::sync::atomic::AtomicBool,
}

impl Pulse {
    fn new() -> Arc<Self> {
        Arc::new(Pulse {
            busy: std::sync::atomic::AtomicBool::new(false),
            suppress: std::sync::atomic::AtomicBool::new(false),
            stop: std::sync::atomic::AtomicBool::new(false),
        })
    }
}

/// Write one frame to stdout under a fresh lock and flush it. Stdout is a
/// `LineWriter`: binary frames rarely contain b'\n', so every frame must
/// be flushed explicitly or it sits in the worker's userspace buffer
/// while the driver blocks reading the pipe — a deadlock, not an error.
/// Locking per frame (instead of for the serve loop's lifetime) is what
/// lets the heartbeat thread interleave whole frames safely.
fn send_stdout_frame(payload: &[u8]) -> Result<()> {
    let stdout = io::stdout();
    let mut out = stdout.lock();
    write_frame(&mut out, payload)
}

fn send_ok<T: Codec>(body: &T) -> Result<()> {
    let stdout = io::stdout();
    let mut out = stdout.lock();
    write_ok_frame(&mut out, body)
}

fn send_err(e: &MrError) -> Result<()> {
    let stdout = io::stdout();
    let mut out = stdout.lock();
    write_err_frame(&mut out, e)
}

/// Stall this worker forever: the driver's supervisor is the only way
/// out. Heartbeats are suppressed so both expiry paths can catch it.
fn hang_forever(pulse: &Pulse) -> ! {
    pulse
        .suppress
        .store(true, std::sync::atomic::Ordering::Relaxed);
    loop {
        std::thread::sleep(std::time::Duration::from_secs(60));
    }
}

fn worker_serve() -> Result<()> {
    {
        let stdout = io::stdout();
        let mut out = stdout.lock();
        writeln!(out, "{WORKER_BANNER}").map_err(|e| pipe_err("banner", &e))?;
        out.flush().map_err(|e| pipe_err("banner flush", &e))?;
    }
    let stdin = io::stdin();
    let mut inp = stdin.lock();

    let Some(frame) = read_frame(&mut inp)? else {
        return Ok(()); // driver went away before the handshake
    };
    let req = HandshakeReq::from_bytes(&frame)?;
    let (cluster, mut job, spill_dir) = match worker_setup(&req) {
        Ok(state) => {
            send_ok(&())?;
            state
        }
        Err(e) => {
            send_err(&e)?;
            return Ok(());
        }
    };
    let corrupt_once = std::env::var_os(CORRUPT_FRAME_ENV).is_some();
    let hang_once = std::env::var_os(HANG_ENV).is_some();
    let faults = cluster.config().faults.clone();
    let job_name = req.job_name.clone();

    // Heartbeat thread: while a task runs, emit a bare heartbeat frame
    // every interval so the driver can tell "slow" from "hung". Never
    // spawned when supervision is off — zero protocol overhead.
    let pulse = Pulse::new();
    let beat = if req.heartbeat_interval_ms > 0 {
        let pulse = Arc::clone(&pulse);
        let interval = std::time::Duration::from_millis(req.heartbeat_interval_ms);
        Some(std::thread::spawn(move || loop {
            std::thread::sleep(interval);
            if pulse.stop.load(std::sync::atomic::Ordering::Relaxed) {
                return;
            }
            if pulse.busy.load(std::sync::atomic::Ordering::Relaxed)
                && !pulse.suppress.load(std::sync::atomic::Ordering::Relaxed)
            {
                // A dead driver pipe shows up on the serve loop's next
                // read; the heartbeat thread just stops trying.
                if send_stdout_frame(&[RESP_HEARTBEAT]).is_err() {
                    return;
                }
            }
        }))
    } else {
        None
    };
    // Decide the chaos treatment for one request *before* dispatching it:
    // the same pure `decide()` the engine uses, so hang/slow-heartbeat
    // cells are reproducible per (job, phase, task, attempt).
    let chaos = |phase: crate::task::Phase, task: u64, attempt: u64| {
        faults
            .as_ref()
            .and_then(|p| p.decide(&job_name, phase, task as usize, attempt as usize))
    };

    fn serve<T: Codec>(pulse: &Pulse, resp: Result<T>) -> Result<()> {
        pulse
            .busy
            .store(false, std::sync::atomic::Ordering::Relaxed);
        pulse
            .suppress
            .store(false, std::sync::atomic::Ordering::Relaxed);
        match resp {
            Ok(body) => send_ok(&body),
            Err(e) => send_err(&e),
        }
    }

    let result = (|| -> Result<()> {
        while let Some(frame) = read_frame(&mut inp)? {
            match Request::from_bytes(&frame)? {
                Request::Shutdown => break,
                Request::Map(m) => {
                    if corrupt_once && m.task_id == 0 && m.attempt == 0 {
                        // Chaos cell: a response the driver cannot decode.
                        // Attempt 1 of the same task responds normally.
                        send_stdout_frame(&[0xEE; 8])?;
                        continue;
                    }
                    if hang_once && m.task_id == 0 && m.attempt == 0 {
                        hang_forever(&pulse);
                    }
                    match chaos(crate::task::Phase::Map, m.task_id, m.attempt) {
                        Some(Fault::Hang) => hang_forever(&pulse),
                        Some(Fault::SlowHeartbeat) => {
                            pulse
                                .suppress
                                .store(true, std::sync::atomic::Ordering::Relaxed);
                        }
                        _ => {}
                    }
                    pulse.busy.store(true, std::sync::atomic::Ordering::Relaxed);
                    serve(&pulse, job.run_map(&cluster, &m, &spill_dir))?;
                }
                Request::Reduce(r) => {
                    match chaos(crate::task::Phase::Reduce, r.task_id, r.attempt) {
                        Some(Fault::Hang) => hang_forever(&pulse),
                        Some(Fault::SlowHeartbeat) => {
                            pulse
                                .suppress
                                .store(true, std::sync::atomic::Ordering::Relaxed);
                        }
                        _ => {}
                    }
                    pulse.busy.store(true, std::sync::atomic::Ordering::Relaxed);
                    serve(&pulse, job.run_reduce(&cluster, &r, &spill_dir))?;
                }
            }
        }
        Ok(())
    })();
    pulse.stop.store(true, std::sync::atomic::Ordering::Relaxed);
    if let Some(handle) = beat {
        let _ = handle.join();
    }
    result
}

fn worker_setup(req: &HandshakeReq) -> Result<(Cluster, Box<dyn WorkerJob>, PathBuf)> {
    let factory = registry()
        .read()
        .get(&req.factory)
        .cloned()
        .ok_or_else(|| {
            MrError::InvalidConfig(format!(
                "no job factory {:?} registered in worker executable",
                req.factory
            ))
        })?;
    let config = ClusterConfig {
        nodes: req.nodes as usize,
        spill_buffer_bytes: req.spill_buffer as usize,
        merge_factor: req.merge_factor as usize,
        task_memory: req.task_memory,
        heavy_hitter_top_k: req.heavy_hitter_top_k as usize,
        heavy_hitter_warn_share: req.heavy_hitter_warn_share,
        // One request at a time; retries, speculation, and the makespan
        // model stay driver-side.
        execution_threads: Some(1),
        max_task_attempts: 1,
        speculation: false,
        faults: req.faults.clone().map(FaultWire::into_plan),
        durable_commits: req.durable,
        ..ClusterConfig::default()
    };
    let dfs = Dfs::new_disk(req.nodes as usize, req.block_size as usize, &req.dfs_root)?;
    let cluster = Cluster::with_dfs(config, dfs)?;
    let mut job = factory(&req.payload, cluster.dfs())?;
    job.set_num_reducers((req.num_reducers as usize).max(1));
    let spill_dir = PathBuf::from(&req.dfs_root)
        .join("shuffle")
        .join(&req.shuffle_tag);
    std::fs::create_dir_all(&spill_dir)
        .map_err(|e| MrError::Codec(format!("create spill dir {}: {e}", spill_dir.display())))?;
    Ok((cluster, job, spill_dir))
}

// ---------------------------------------------------------------------------
// Driver side: worker pool
// ---------------------------------------------------------------------------

static SHUFFLE_SEQ: AtomicU64 = AtomicU64::new(0);

/// One live worker process with its pipes.
struct Worker {
    /// Shared with supervisor expiry callbacks, which SIGKILL a hung
    /// child from the monitor thread while the owning request blocks on
    /// the pipe (the kill surfaces there as a transport error).
    child: Arc<Mutex<Child>>,
    stdin: ChildStdin,
    stdout: BufReader<ChildStdout>,
    /// Pool slot this worker occupies (quarantine ledger key).
    slot: usize,
}

impl Worker {
    fn request<T: Codec>(&mut self, req: &Request) -> Result<std::result::Result<T, MrError>> {
        self.request_with(req, || {})
    }

    /// Send one request and read its response, invoking `on_heartbeat`
    /// for every heartbeat frame the worker interleaves while busy.
    fn request_with<T: Codec>(
        &mut self,
        req: &Request,
        on_heartbeat: impl FnMut(),
    ) -> Result<std::result::Result<T, MrError>> {
        write_frame(&mut self.stdin, &req.to_bytes())?;
        read_response_with(&mut self.stdout, on_heartbeat)
    }

    /// A handle an expiry callback can use to kill the child without
    /// owning the worker.
    fn kill_handle(&self) -> Arc<Mutex<Child>> {
        Arc::clone(&self.child)
    }

    fn kill(self) {
        let mut child = self.child.lock();
        let _ = child.kill();
        let _ = child.wait();
    }

    fn shutdown(mut self) {
        let ok = write_frame(&mut self.stdin, &Request::Shutdown.to_bytes()).is_ok();
        drop(self.stdin); // EOF backstop if the frame was lost
        let mut child = self.child.lock();
        if ok {
            let _ = child.wait();
        } else {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

/// Everything needed to (re)spawn a worker mid-job: the handshake frame
/// is immutable for the job's lifetime.
struct SpawnSpec {
    handshake: Vec<u8>,
}

impl SpawnSpec {
    /// Spawn `current_exe` as a worker on pool slot `slot` and complete
    /// the handshake. Errors are strings, not `MrError`s: before the
    /// first worker is up they mean "fall back in-process", never "fail
    /// the job".
    fn spawn(&self, slot: usize) -> std::result::Result<Worker, String> {
        let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
        let mut child = Command::new(&exe)
            .env(WORKER_ENV, "1")
            // Libtest filter args, so a test binary runs (only) its
            // `process_worker_entry` test; a worker-aware CLI binary
            // checks the env var first and never parses these.
            .args(["process_worker_entry", "--nocapture", "--test-threads=1"])
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .map_err(|e| format!("spawn {}: {e}", exe.display()))?;
        let mut stdin = child.stdin.take().expect("piped stdin");
        let mut stdout = BufReader::new(child.stdout.take().expect("piped stdout"));
        let fail = |child: &mut Child, why: String| {
            let _ = child.kill();
            let _ = child.wait();
            why
        };
        if let Err(e) = write_frame(&mut stdin, &self.handshake) {
            return Err(fail(&mut child, format!("handshake send: {e}")));
        }
        // Scan past the libtest preamble to the worker banner.
        let mut line = String::new();
        loop {
            line.clear();
            match stdout.read_line(&mut line) {
                Ok(0) => return Err(fail(&mut child, "worker exited before banner".into())),
                Ok(_) => {
                    // Suffix match: in a libtest worker the banner lands on
                    // the same line as the harness's un-terminated
                    // "test process_worker_entry ... " progress prefix.
                    if line.trim_end().ends_with(WORKER_BANNER) {
                        break;
                    }
                }
                Err(e) => return Err(fail(&mut child, format!("banner read: {e}"))),
            }
        }
        match read_response::<()>(&mut stdout) {
            Ok(Ok(())) => Ok(Worker {
                child: Arc::new(Mutex::new(child)),
                stdin,
                stdout,
                slot,
            }),
            Ok(Err(e)) => Err(fail(&mut child, format!("worker rejected handshake: {e}"))),
            Err(e) => Err(fail(&mut child, format!("handshake response: {e}"))),
        }
    }
}

/// Per-slot health ledger. A live worker (idle or checked out) holds its
/// slot; a worker loss frees the slot and charges it one loss. Enough
/// losses inside the sliding window quarantine the slot: no replacement
/// is ever spawned on it again this job.
#[derive(Default)]
struct SlotState {
    in_use: bool,
    quarantined: bool,
    losses: Vec<std::time::Instant>,
}

/// What [`WorkerPool::checkout`] hands out.
enum CheckedOut {
    /// A live worker process.
    Worker(Worker),
    /// Every slot is quarantined (or otherwise unavailable): the caller
    /// runs this task attempt in-process against the same on-disk DFS,
    /// producing byte-identical output.
    Fallback,
}

/// A checkout/return pool of worker processes. Lost workers are simply
/// not returned; the next checkout spawns a replacement on a healthy
/// slot, with bounded, backed-off retries.
pub(crate) struct WorkerPool {
    spec: SpawnSpec,
    idle: Mutex<Vec<Worker>>,
    slots: Mutex<Vec<SlotState>>,
    size: usize,
    spill_dir: PathBuf,
    /// Total processes spawned over the pool's lifetime, replacements
    /// for lost workers included.
    spawned: AtomicU64,
    /// Transport/timeout losses within the window that quarantine a slot.
    quarantine_losses: usize,
    /// Sliding window for the loss ledger.
    quarantine_window: std::time::Duration,
}

/// Respawn attempts per checkout before giving up on a slot.
const RESPAWN_ATTEMPTS: u32 = 3;

impl WorkerPool {
    fn checkout(&self, counters: &Counters) -> Result<CheckedOut> {
        if let Some(w) = self.idle.lock().pop() {
            return Ok(CheckedOut::Worker(w));
        }
        // Claim a free, healthy slot for the replacement. None free —
        // every slot quarantined, or all transiently occupied — means
        // this attempt runs in-process instead of failing the job.
        let slot = {
            let mut slots = self.slots.lock();
            match slots.iter().position(|s| !s.in_use && !s.quarantined) {
                Some(i) => {
                    slots[i].in_use = true;
                    i
                }
                None => return Ok(CheckedOut::Fallback),
            }
        };
        let mut delay = std::time::Duration::from_millis(50);
        let mut last_err = String::new();
        for attempt in 0..RESPAWN_ATTEMPTS {
            if attempt > 0 {
                counters.get("mr.process.respawn_retries").incr();
                std::thread::sleep(delay);
                delay = (delay * 2).min(std::time::Duration::from_secs(1));
            }
            match self.spec.spawn(slot) {
                Ok(w) => {
                    self.spawned.fetch_add(1, Ordering::Relaxed);
                    return Ok(CheckedOut::Worker(w));
                }
                Err(e) => last_err = e,
            }
        }
        self.slots.lock()[slot].in_use = false;
        Err(MrError::TaskFailed(format!(
            "worker respawn failed after {RESPAWN_ATTEMPTS} attempts: {last_err}"
        )))
    }

    fn put_back(&self, w: Worker) {
        self.idle.lock().push(w);
    }

    /// A worker died (transport error or supervised kill): free its slot
    /// and charge one loss against it. Crossing the threshold inside the
    /// window quarantines the slot.
    fn record_loss(&self, slot: usize, counters: &Counters, trace: Option<&TraceSink>, job: &str) {
        let mut slots = self.slots.lock();
        let s = &mut slots[slot];
        s.in_use = false;
        let now = std::time::Instant::now();
        s.losses
            .retain(|t| now.duration_since(*t) <= self.quarantine_window);
        s.losses.push(now);
        if !s.quarantined && s.losses.len() >= self.quarantine_losses {
            s.quarantined = true;
            counters.get("mr.supervise.quarantined").incr();
            if let Some(sink) = trace {
                let mut ev = TraceEvent::new(EventKind::Quarantine, job);
                ev.detail = Some(format!(
                    "worker slot {slot} quarantined after {} losses",
                    s.losses.len()
                ));
                sink.emit(ev);
            }
        }
    }

    fn shutdown(&self) {
        for w in self.idle.lock().drain(..) {
            w.shutdown();
        }
    }
}

fn sanitize_tag(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
        .take(48)
        .collect()
}

/// Build the handshake from the job parameters and bring up the first
/// worker. A `Err` here means the pool cannot come up at all (unregistered
/// factory, unspawnable executable): the caller falls back in-process.
pub(crate) fn spawn_pool<M, R>(
    params: &ExecParams<'_, M, R>,
) -> std::result::Result<WorkerPool, String>
where
    M: Mapper,
    R: Reducer<Key = M::OutKey, InValue = M::OutValue>,
{
    let spec = params.remote.expect("caller checked remote");
    let dfs = params.map_shared.dfs;
    let root = dfs.disk_root().expect("caller checked disk root");
    let config = params.config;
    let tag = format!(
        "{}-{}-{}",
        sanitize_tag(params.map_shared.job_name),
        std::process::id(),
        SHUFFLE_SEQ.fetch_add(1, Ordering::Relaxed)
    );
    let spill_dir = root.join("shuffle").join(&tag);
    std::fs::create_dir_all(&spill_dir).map_err(|e| format!("create shuffle dir: {e}"))?;
    let handshake = HandshakeReq {
        job_name: params.map_shared.job_name.to_string(),
        factory: spec.factory.clone(),
        payload: spec.payload.clone(),
        nodes: config.nodes as u64,
        block_size: dfs.block_size() as u64,
        dfs_root: root.display().to_string(),
        num_reducers: params.num_reducers as u64,
        spill_buffer: config.spill_buffer_bytes as u64,
        merge_factor: config.merge_factor as u64,
        task_memory: config.task_memory,
        heavy_hitter_top_k: config.heavy_hitter_top_k as u64,
        heavy_hitter_warn_share: config.heavy_hitter_warn_share,
        shuffle_tag: tag,
        faults: config.faults.as_ref().map(FaultWire::from_plan),
        // Workers only emit heartbeats when the driver supervises; an
        // unsupervised job keeps the exact pre-supervision protocol.
        heartbeat_interval_ms: if config.task_timeout_secs.is_some() {
            ((config.heartbeat_interval_secs * 1000.0).round() as u64).max(1)
        } else {
            0
        },
        durable: config.durable_commits,
    };
    let size = params.threads.clamp(1, 8);
    let mut slots: Vec<SlotState> = (0..size).map(|_| SlotState::default()).collect();
    slots[0].in_use = true; // the eager first worker below
    let pool = WorkerPool {
        spec: SpawnSpec {
            handshake: handshake.to_bytes(),
        },
        idle: Mutex::new(Vec::new()),
        slots: Mutex::new(slots),
        size,
        spill_dir,
        spawned: AtomicU64::new(1),
        quarantine_losses: config.worker_quarantine_losses.max(1),
        quarantine_window: std::time::Duration::from_secs_f64(config.worker_quarantine_window_secs),
    };
    // Bring up (and handshake) the first worker eagerly: this validates
    // the factory exists in the worker executable before any task runs.
    let first = pool.spec.spawn(0)?;
    pool.idle.lock().push(first);
    Ok(pool)
}

// ---------------------------------------------------------------------------
// Driver side: job execution over the pool
// ---------------------------------------------------------------------------

fn absorb_metrics(
    counters: &Counters,
    histograms: &Histograms,
    c_delta: &[(String, u64)],
    h_delta: Vec<(String, HistWire)>,
) {
    for (name, v) in c_delta {
        if *v > 0 {
            counters.get(name).add(*v);
        }
    }
    for (name, wire) in h_delta {
        histograms.get(&name).absorb(&wire.into_snapshot());
    }
}

/// Run the job's map and reduce phases on the worker pool. Called only
/// after [`spawn_pool`] proved the pool viable; from here on, errors are
/// real job errors with their usual classes.
pub(crate) fn execute_remote<M, R>(
    params: ExecParams<'_, M, R>,
    pool: WorkerPool,
) -> Result<ExecOutcome>
where
    M: Mapper,
    R: Reducer<Key = M::OutKey, InValue = M::OutValue>,
{
    let ExecParams {
        map_items,
        map_shared,
        reduce_shared,
        reducer,
        policy,
        num_reducers,
        config,
        ..
    } = params;
    let nodes = config.nodes;
    let threads = pool.size;
    let counters = map_shared.counters;
    let histograms = map_shared.histograms;
    let trace = map_shared.cluster.trace();
    let job_name = map_shared.job_name.to_string();
    // `Reducer: Clone + Send` but not `Sync`; the fallback reduce path
    // clones it from inside worker-thread closures, so park it behind a
    // lock.
    let reducer = Mutex::new(reducer);
    counters.get("mr.process.remote_jobs").incr();

    // Per-phase wall attribution: the map window ends when the map
    // `run_tasks` barrier returns, the refs-routing span is the regroup
    // window, and everything after it (reduce tasks, pool shutdown, spill
    // cleanup) lands in the reduce window so the three spans tile the
    // backend's whole execution. `accounted_us` carries the running total
    // across the closure boundary.
    let exec_start = std::time::Instant::now();
    let accounted_us = std::cell::Cell::new(0u64);

    // Wall-clock supervision: one monitor thread for the whole job, one
    // watch per in-flight request. Expiry SIGKILLs the child; the owning
    // request's blocked read then errors into the transport-failure
    // branch below, which classifies it as a transient `NodeLost`.
    let supervision = config.task_timeout_secs.map(|secs| {
        let deadline = std::time::Duration::from_secs_f64(secs);
        let hb_window = std::time::Duration::from_secs_f64(
            config.heartbeat_interval_secs * config.heartbeat_grace,
        );
        let tick = deadline.min(hb_window) / 4;
        (Supervisor::new(tick), deadline, hb_window)
    });
    // Registers a supervision watch for one request; the guard must stay
    // alive exactly as long as the pipe conversation.
    let watch_request = |w: &Worker, phase: Phase, task: usize, attempt: usize| {
        supervision.as_ref().map(|(sup, deadline, hb_window)| {
            let handle = w.kill_handle();
            let counters = counters.clone();
            let trace = trace.cloned();
            let job = job_name.clone();
            sup.watch(Some(*deadline), Some(*hb_window), move |reason| {
                {
                    let mut child = handle.lock();
                    let _ = child.kill();
                }
                counters.get("mr.supervise.task_timeout").incr();
                if let Some(sink) = &trace {
                    let mut ev = TraceEvent::new(EventKind::TaskTimeout, job.as_str()).at_task(
                        phase,
                        task,
                        attempt,
                        task % nodes,
                    );
                    ev.detail = Some(reason.as_str().to_string());
                    sink.emit(ev);
                }
            })
        })
    };

    // Spill-run refs per completed map task, collected out-of-band from
    // the fabricated MapTaskOuts (outer index = partition).
    let refs_table: Mutex<Vec<(usize, Vec<Vec<RunRef>>)>> = Mutex::new(Vec::new());

    let result = (|| {
        let (mut map_outs, map_stats) = run_tasks(map_items, threads, policy, |item, attempt| {
            let mut w = match pool.checkout(counters)? {
                CheckedOut::Worker(w) => w,
                CheckedOut::Fallback => {
                    // No healthy worker slot left: run this map attempt
                    // in-process on the same DFS and park its runs under
                    // the exact names a worker would have used.
                    counters.get("mr.supervise.fallback_tasks").incr();
                    let mut out = run_map_task(item, attempt, map_shared)?;
                    let task_id = item.task_id;
                    let transport_start = std::time::Instant::now();
                    let mut transport_bytes = 0u64;
                    let mut refs: Vec<Vec<RunRef>> = Vec::with_capacity(out.runs.len());
                    for (p, runs) in out.runs.drain(..).enumerate() {
                        let mut part = Vec::with_capacity(runs.len());
                        for (s, run) in runs.iter().enumerate() {
                            let name = format!("map-{task_id:05}-a{attempt}-p{p:03}-s{s:03}.run");
                            transport_bytes += run.len_bytes() as u64;
                            part.push(write_run_file(&pool.spill_dir, &name, run)?);
                        }
                        refs.push(part);
                    }
                    counters.get(crate::profile::BUSY_SHUFFLE_TRANSPORT_US).add(
                        crate::profile::secs_to_us(transport_start.elapsed().as_secs_f64()),
                    );
                    counters
                        .get(crate::profile::BUSY_SHUFFLE_TRANSPORT_BYTES)
                        .add(transport_bytes);
                    refs_table.lock().push((task_id, refs));
                    return Ok(out);
                }
            };
            let req = Request::Map(MapReq {
                task_id: item.task_id as u64,
                attempt: attempt as u64,
            });
            let guard = watch_request(&w, Phase::Map, item.task_id, attempt);
            let resp = match &guard {
                Some(g) => {
                    let activity = g.activity();
                    w.request_with::<MapResp>(&req, || activity.touch())
                }
                None => w.request::<MapResp>(&req),
            };
            drop(guard);
            match resp {
                Ok(Ok(resp)) => {
                    pool.put_back(w);
                    absorb_metrics(counters, histograms, &resp.counters, resp.histograms);
                    refs_table.lock().push((item.task_id, resp.refs));
                    Ok(MapTaskOut {
                        task_id: item.task_id,
                        duration: resp.duration,
                        base_duration: resp.base_duration,
                        node_hint: resp.node_hint.map(|n| n as usize),
                        node: resp.node as usize,
                        input_bytes: resp.input_bytes,
                        input_records: resp.input_records,
                        output_records: resp.output_records,
                        spills: resp.spills,
                        combine_in: resp.combine_in,
                        combine_out: resp.combine_out,
                        runs: Vec::new(), // parked on disk, routed by refs
                    })
                }
                Ok(Err(e)) => {
                    // Task-level failure from a healthy worker: keep it.
                    pool.put_back(w);
                    Err(e)
                }
                Err(_) => {
                    // Transport failure: the worker process is gone or
                    // corrupt (including a supervised timeout kill).
                    // Classify as a lost node so the retry runs on a
                    // fresh worker.
                    let slot = w.slot;
                    w.kill();
                    pool.record_loss(slot, counters, trace, &job_name);
                    counters.get("mr.process.worker_lost").incr();
                    Err(MrError::NodeLost {
                        node: item.task_id % nodes,
                        task: format!("{job_name}/map-{}", item.task_id),
                    })
                }
            }
        })?;
        map_outs.sort_by_key(|o| o.task_id);
        let spills = map_outs.iter().map(|o| o.spills).sum();
        let map_us = crate::profile::secs_to_us(exec_start.elapsed().as_secs_f64());
        counters.get(crate::profile::WALL_MAP_US).add(map_us);
        accounted_us.set(map_us);

        // Route refs: canonical run presentation order is (map task,
        // spill index) within each partition, exactly the order the
        // simulated backend's serial regroup produces.
        let mut table = std::mem::take(&mut *refs_table.lock());
        table.sort_by_key(|(task, _)| *task);
        let mut partition_refs: Vec<Vec<RunRef>> = (0..num_reducers).map(|_| Vec::new()).collect();
        let mut shuffle_bytes = 0u64;
        let mut shuffle_records = 0u64;
        for (_task, per_partition) in table {
            for (p, refs) in per_partition.into_iter().enumerate() {
                for rref in refs {
                    shuffle_bytes += rref.len;
                    shuffle_records += rref.records;
                    partition_refs[p].push(rref);
                }
            }
        }

        let regroup_us = crate::profile::secs_to_us(exec_start.elapsed().as_secs_f64())
            .saturating_sub(accounted_us.get());
        counters
            .get(crate::profile::WALL_REGROUP_US)
            .add(regroup_us);
        counters
            .get(crate::profile::BUSY_REGROUP_US)
            .add(regroup_us);
        accounted_us.set(accounted_us.get() + regroup_us);

        let reduce_items: Vec<(usize, Vec<RunRef>)> =
            partition_refs.into_iter().enumerate().collect();
        let reduce_result = run_tasks(reduce_items, threads, policy, |(p, refs), attempt| {
            let mut w = match pool.checkout(counters)? {
                CheckedOut::Worker(w) => w,
                CheckedOut::Fallback => {
                    // In-process reduce over the same parked spill runs:
                    // identical merge order, identical committed bytes.
                    counters.get("mr.supervise.fallback_tasks").incr();
                    let transport_start = std::time::Instant::now();
                    let mut runs = Vec::with_capacity(refs.len());
                    for rref in refs {
                        runs.push(read_run_file(&pool.spill_dir, rref)?);
                    }
                    counters.get(crate::profile::BUSY_SHUFFLE_TRANSPORT_US).add(
                        crate::profile::secs_to_us(transport_start.elapsed().as_secs_f64()),
                    );
                    let item = ReduceItem::<M, R>::new(*p, runs, reducer.lock().clone());
                    return run_reduce_task(&item, attempt, reduce_shared);
                }
            };
            let req = Request::Reduce(ReduceReq {
                task_id: *p as u64,
                attempt: attempt as u64,
                refs: refs.clone(),
            });
            let guard = watch_request(&w, Phase::Reduce, *p, attempt);
            let resp = match &guard {
                Some(g) => {
                    let activity = g.activity();
                    w.request_with::<ReduceResp>(&req, || activity.touch())
                }
                None => w.request::<ReduceResp>(&req),
            };
            drop(guard);
            match resp {
                Ok(Ok(resp)) => {
                    pool.put_back(w);
                    absorb_metrics(counters, histograms, &resp.counters, resp.histograms);
                    Ok(ReduceTaskOut {
                        task_id: *p,
                        node: resp.node as usize,
                        duration: resp.duration,
                        base_duration: resp.base_duration,
                        input_bytes: resp.input_bytes,
                        groups: resp.groups,
                        input_records: resp.input_records,
                        output_records: resp.output_records,
                        merge_passes: resp.merge_passes,
                        group_records: resp.group_records.into_snapshot(),
                        key_counts: resp.key_counts.map(TopKWire::into_topk),
                    })
                }
                Ok(Err(e)) => {
                    pool.put_back(w);
                    Err(e)
                }
                Err(_) => {
                    let slot = w.slot;
                    w.kill();
                    pool.record_loss(slot, counters, trace, &job_name);
                    counters.get("mr.process.worker_lost").incr();
                    Err(MrError::NodeLost {
                        node: *p % nodes,
                        task: format!("{job_name}/reduce-{p}"),
                    })
                }
            }
        });
        Ok(ExecOutcome {
            map_outs,
            map_stats,
            shuffle_bytes,
            shuffle_records,
            spills,
            reduce_result,
        })
    })();

    pool.shutdown();
    let _ = std::fs::remove_dir_all(&pool.spill_dir);
    counters
        .get("mr.process.workers_spawned")
        .add(pool.spawned.load(Ordering::Relaxed));
    if result.is_ok() {
        // Everything since the regroup window closed — reduce tasks, pool
        // shutdown, spill cleanup — is the reduce wall window.
        let reduce_us = crate::profile::secs_to_us(exec_start.elapsed().as_secs_f64())
            .saturating_sub(accounted_us.get());
        counters.get(crate::profile::WALL_REDUCE_US).add(reduce_us);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_err(e: MrError) {
        let bytes = e.to_bytes();
        let back = MrError::from_bytes(&bytes).unwrap();
        assert_eq!(format!("{e}"), format!("{back}"));
        assert_eq!(e.class(), back.class());
    }

    #[test]
    fn every_error_variant_round_trips_with_its_class() {
        roundtrip_err(MrError::FileNotFound("/x".into()));
        roundtrip_err(MrError::FileExists("/x".into()));
        roundtrip_err(MrError::Codec("bad".into()));
        roundtrip_err(MrError::OutOfMemory {
            task: "t".into(),
            requested: 10,
            budget: 5,
            transient: true,
        });
        roundtrip_err(MrError::TaskFailed("f".into()));
        roundtrip_err(MrError::TaskPanicked("p".into()));
        roundtrip_err(MrError::NodeLost {
            node: 3,
            task: "j/map-1".into(),
        });
        roundtrip_err(MrError::InvalidConfig("c".into()));
        roundtrip_err(MrError::ChecksumMismatch {
            path: "/p".into(),
            expected: 1,
            found: 2,
        });
        roundtrip_err(MrError::DriverCrash("d".into()));
    }

    #[test]
    fn frames_round_trip_and_reject_damage() {
        let payload = b"hello frames".to_vec();
        let mut wire = Vec::new();
        write_frame(&mut wire, &payload).unwrap();
        let mut r = &wire[..];
        assert_eq!(read_frame(&mut r).unwrap(), Some(payload));
        assert_eq!(read_frame(&mut r).unwrap(), None); // clean EOF
    }

    #[test]
    fn truncated_and_inflated_frames_are_transport_errors() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"abcdef").unwrap();
        // Truncate the body.
        let mut r = &wire[..wire.len() - 2];
        assert!(read_frame(&mut r).is_err());
        // Length prefix beyond the cap.
        let mut big = Vec::new();
        write_varint(MAX_FRAME + 1, &mut big);
        let mut r = &big[..];
        assert!(read_frame(&mut r).is_err());
        // Overlong varint length prefix.
        let overlong = [0x80u8; 11];
        let mut r = &overlong[..];
        assert!(read_frame(&mut r).is_err());
        // Mid-length EOF.
        let partial = [0x80u8];
        let mut r = &partial[..];
        assert!(read_frame(&mut r).is_err());
    }

    #[test]
    fn mutated_response_frames_never_panic() {
        let resp = MapResp {
            duration: 1.5,
            base_duration: 1.0,
            node_hint: Some(2),
            node: 2,
            input_bytes: 100,
            input_records: 10,
            output_records: 20,
            spills: 1,
            combine_in: 0,
            combine_out: 0,
            refs: vec![vec![RunRef {
                file: "map-00000-a0-p000-s000.run".into(),
                records: 20,
                len: 321,
            }]],
            counters: vec![("mr.x".into(), 3)],
            histograms: vec![],
        };
        let mut buf = vec![0u8];
        resp.encode(&mut buf);
        // Truncations.
        for cut in 0..buf.len() {
            let mut r = ByteReader::new(&buf[..cut]);
            let _ = r.take_u8().and_then(|_| MapResp::decode(&mut r));
        }
        // Single-byte mutations.
        for i in 0..buf.len() {
            for flip in [0x01u8, 0x80, 0xFF] {
                let mut m = buf.clone();
                m[i] ^= flip;
                let mut r = ByteReader::new(&m);
                let _ = r.take_u8().and_then(|_| MapResp::decode(&mut r));
            }
        }
    }

    #[test]
    fn spill_run_files_round_trip_and_fail_closed_on_corruption() {
        let dir = std::env::temp_dir().join(format!(
            "mr-runfile-test-{}-{}",
            std::process::id(),
            SHUFFLE_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let run = Run::encode(&[("a".to_string(), 1u64), ("b".to_string(), 2u64)]);
        let rref = write_run_file(&dir, "t.run", &run).unwrap();
        assert_eq!(rref.records, run.records as u64);
        assert_eq!(rref.len, run.data.len() as u64);
        let back = read_run_file(&dir, &rref).unwrap();
        assert_eq!(back.data, run.data);
        assert_eq!(back.records, run.records);

        // Flip a payload byte: checksum mismatch, never silent data.
        let path = dir.join("t.run");
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        match read_run_file(&dir, &rref) {
            Err(MrError::ChecksumMismatch { .. }) => {}
            other => panic!("expected checksum mismatch, got {other:?}"),
        }

        // Damage the magic: structural decode error.
        bytes[last] ^= 0x40;
        bytes[0] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        match read_run_file(&dir, &rref) {
            Err(MrError::Codec(msg)) => assert!(msg.contains("bad magic"), "{msg}"),
            other => panic!("expected codec error, got {other:?}"),
        }

        // Missing file: FileNotFound.
        std::fs::remove_file(&path).unwrap();
        assert!(matches!(
            read_run_file(&dir, &rref),
            Err(MrError::FileNotFound(_))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn handshake_and_fault_plan_round_trip_field_wise() {
        let plan = FaultPlan {
            seed: 42,
            p_transient: 0.1,
            p_panic: 0.2,
            p_oom: 0.3,
            p_late: 0.4,
            p_hang: 0.05,
            p_slow_heartbeat: 0.02,
            p_straggler: 0.5,
            straggler_factor: 4.0,
            dead_node: Some(1),
            crash_after: None,
            crash_mid: Some(7),
            corrupt_path: Some("/out/part-00000".into()),
            ..FaultPlan::default()
        };
        let req = HandshakeReq {
            job_name: "stage1".into(),
            factory: "probe".into(),
            payload: vec![1, 2, 3],
            nodes: 3,
            block_size: 4096,
            dfs_root: "/tmp/mrdfs".into(),
            num_reducers: 4,
            spill_buffer: 1024,
            merge_factor: 8,
            task_memory: Some(1 << 20),
            heavy_hitter_top_k: 10,
            heavy_hitter_warn_share: 0.5,
            shuffle_tag: "stage1-1-0".into(),
            faults: Some(FaultWire::from_plan(&plan)),
            heartbeat_interval_ms: 250,
            durable: false,
        };
        let back = HandshakeReq::from_bytes(&req.to_bytes()).unwrap();
        assert_eq!(back.job_name, "stage1");
        assert_eq!(back.payload, vec![1, 2, 3]);
        assert_eq!(back.num_reducers, 4);
        assert_eq!(back.heartbeat_interval_ms, 250);
        assert!(!back.durable);
        let plan_back = back.faults.unwrap().into_plan();
        assert_eq!(plan_back.seed, plan.seed);
        assert_eq!(plan_back.p_hang, plan.p_hang);
        assert_eq!(plan_back.p_slow_heartbeat, plan.p_slow_heartbeat);
        assert_eq!(plan_back.dead_node, plan.dead_node);
        assert_eq!(plan_back.crash_mid, plan.crash_mid);
        assert_eq!(plan_back.corrupt_path, plan.corrupt_path);
        assert_eq!(plan_back.straggler_factor, plan.straggler_factor);
    }

    #[test]
    fn topk_wire_reconstructs_exactly() {
        let mut t = TopK::new(4);
        t.add("a", 5);
        t.add("b", 9);
        t.add("a", 1);
        let back = TopKWire::from_topk(&t).into_topk();
        assert_eq!(back.capacity(), t.capacity());
        assert_eq!(back.entries(), t.entries());
        assert_eq!(back.top(2), t.top(2));
    }
}
