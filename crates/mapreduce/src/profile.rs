//! Per-phase wall-time and byte attribution for a job execution.
//!
//! The engine and every backend record coarse phase timings into the job's
//! ordinary [`crate::Counters`] under the `profile.*` names below. Riding on
//! counters is deliberate: worker processes already snapshot their per-request
//! counters into `MapResp`/`ReduceResp` frames and the driver already merges
//! them (`absorb_metrics`), so process-worker phase timings cross the pipe
//! with **zero wire-protocol changes**.
//!
//! Two families of counters:
//!
//! * **Wall windows** (`profile.wall.*_us`) — non-overlapping driver-side
//!   spans that partition a job's wall clock: setup, worker-pool spawn, map
//!   phase, serial regroup (simulated backend only), reduce phase, output
//!   commit, and metrics finalization. Because the windows are measured
//!   back-to-back on the driver thread, their sum approaches the job's wall
//!   time by construction — that is what makes the ≥95 % coverage contract
//!   checkable.
//! * **Busy attribution** (`profile.busy.*`) — time (and bytes) summed
//!   across task attempts, shard workers, drain threads, and worker
//!   processes: user map/reduce execution, spill encode, shuffle transport
//!   (bounded-channel sends or run-file I/O), regroup/merge work. Busy time
//!   may exceed the enclosing wall window when threads overlap; it explains
//!   *where* a wall window went rather than partitioning it.
//!
//! Collection is always on — the instrumentation is a handful of
//! `Instant::elapsed` calls per *attempt*, not per record — but the derived
//! [`TraceSink`](crate::TraceSink) event is only emitted when
//! [`ClusterConfig::profile`](crate::ClusterConfig::profile) is set, so
//! existing traces are unchanged unless profiling is requested.

use crate::json::{obj, Json};
use crate::metrics::JobMetrics;

/// Wall window: driver-side setup before the backend runs (input split
/// planning, shared-state construction, fault arming). Microseconds.
pub const WALL_SETUP_US: &str = "profile.wall.setup_us";
/// Wall window: spawning + handshaking the process-backend worker pool.
/// Microseconds; zero on the in-process backends.
pub const WALL_SPAWN_US: &str = "profile.wall.spawn_us";
/// Wall window: the map phase, as seen by the driver. On the sharded backend
/// this ends when the *last* map worker exits (its channel senders drop).
/// Microseconds.
pub const WALL_MAP_US: &str = "profile.wall.map_us";
/// Wall window: the serial regroup between map and reduce on the simulated
/// backend (run routing). Microseconds; zero where regroup overlaps the map
/// phase (sharded drain threads) or is part of reference routing (process).
pub const WALL_REGROUP_US: &str = "profile.wall.regroup_us";
/// Wall window: the reduce phase, as seen by the driver. Microseconds.
pub const WALL_REDUCE_US: &str = "profile.wall.reduce_us";
/// Wall window: the atomic output-commit protocol (rename of `_attempt-*`
/// files, manifest write). Microseconds.
pub const WALL_COMMIT_US: &str = "profile.wall.commit_us";
/// Wall window: building `JobMetrics` (schedule simulation, histogram
/// merging) after the reduce outputs are committed. Microseconds.
pub const WALL_FINALIZE_US: &str = "profile.wall.finalize_us";

/// Busy time inside user map functions (attempt execution minus spill
/// encode), summed over attempts. Microseconds.
pub const BUSY_MAP_EXEC_US: &str = "profile.busy.map_exec_us";
/// Busy time sorting/combining/encoding map output into spill runs, summed
/// over attempts. Microseconds.
pub const BUSY_SPILL_US: &str = "profile.busy.spill_us";
/// Encoded bytes written into spill runs, summed over attempts.
pub const BUSY_SPILL_BYTES: &str = "profile.busy.spill_bytes";
/// Busy time moving encoded runs between map and reduce sides: blocking
/// bounded-channel sends (sharded) or run-file write/read I/O (process).
/// Microseconds.
pub const BUSY_SHUFFLE_TRANSPORT_US: &str = "profile.busy.shuffle_transport_us";
/// Bytes moved by the shuffle transport (run payload bytes).
pub const BUSY_SHUFFLE_TRANSPORT_BYTES: &str = "profile.busy.shuffle_transport_bytes";
/// Busy time routing/ordering collected runs per reduce partition (serial
/// regroup loop, drain-thread sorts, run-reference routing). Microseconds.
pub const BUSY_REGROUP_US: &str = "profile.busy.regroup_us";
/// Busy time in the sorted-run merge feeding each reduce (k-way merge and
/// merge-factor pre-passes). Microseconds.
pub const BUSY_MERGE_US: &str = "profile.busy.merge_us";
/// Busy time inside user reduce functions (attempt execution minus merge),
/// summed over attempts. Microseconds.
pub const BUSY_REDUCE_EXEC_US: &str = "profile.busy.reduce_exec_us";

/// Every wall-window counter name, in execution order.
pub const WALL_COUNTERS: &[&str] = &[
    WALL_SETUP_US,
    WALL_SPAWN_US,
    WALL_MAP_US,
    WALL_REGROUP_US,
    WALL_REDUCE_US,
    WALL_COMMIT_US,
    WALL_FINALIZE_US,
];

/// Every busy-attribution counter name (times and bytes).
pub const BUSY_COUNTERS: &[&str] = &[
    BUSY_MAP_EXEC_US,
    BUSY_SPILL_US,
    BUSY_SPILL_BYTES,
    BUSY_SHUFFLE_TRANSPORT_US,
    BUSY_SHUFFLE_TRANSPORT_BYTES,
    BUSY_REGROUP_US,
    BUSY_MERGE_US,
    BUSY_REDUCE_EXEC_US,
];

/// A job's per-phase profile, extracted from its counters.
///
/// All `wall_*` fields are the non-overlapping driver windows; `busy_*`
/// fields are summed worker-side attribution. Times are microseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JobProfile {
    /// Driver setup window (µs).
    pub wall_setup_us: u64,
    /// Worker-pool spawn window (µs, process backend only).
    pub wall_spawn_us: u64,
    /// Map-phase window (µs).
    pub wall_map_us: u64,
    /// Serial regroup window (µs, simulated backend only).
    pub wall_regroup_us: u64,
    /// Reduce-phase window (µs).
    pub wall_reduce_us: u64,
    /// Output-commit window (µs).
    pub wall_commit_us: u64,
    /// Metrics-finalization window (µs).
    pub wall_finalize_us: u64,
    /// User map execution busy time (µs).
    pub busy_map_exec_us: u64,
    /// Spill sort/combine/encode busy time (µs).
    pub busy_spill_us: u64,
    /// Spill bytes encoded.
    pub busy_spill_bytes: u64,
    /// Shuffle transport busy time (µs).
    pub busy_shuffle_transport_us: u64,
    /// Shuffle transport bytes moved.
    pub busy_shuffle_transport_bytes: u64,
    /// Regroup/routing busy time (µs).
    pub busy_regroup_us: u64,
    /// Sorted-run merge busy time (µs).
    pub busy_merge_us: u64,
    /// User reduce execution busy time (µs).
    pub busy_reduce_exec_us: u64,
}

impl JobProfile {
    /// Extract the profile recorded in a job's counters. Counters that were
    /// never touched read as zero.
    pub fn from_metrics(m: &JobMetrics) -> JobProfile {
        JobProfile {
            wall_setup_us: m.counter(WALL_SETUP_US),
            wall_spawn_us: m.counter(WALL_SPAWN_US),
            wall_map_us: m.counter(WALL_MAP_US),
            wall_regroup_us: m.counter(WALL_REGROUP_US),
            wall_reduce_us: m.counter(WALL_REDUCE_US),
            wall_commit_us: m.counter(WALL_COMMIT_US),
            wall_finalize_us: m.counter(WALL_FINALIZE_US),
            busy_map_exec_us: m.counter(BUSY_MAP_EXEC_US),
            busy_spill_us: m.counter(BUSY_SPILL_US),
            busy_spill_bytes: m.counter(BUSY_SPILL_BYTES),
            busy_shuffle_transport_us: m.counter(BUSY_SHUFFLE_TRANSPORT_US),
            busy_shuffle_transport_bytes: m.counter(BUSY_SHUFFLE_TRANSPORT_BYTES),
            busy_regroup_us: m.counter(BUSY_REGROUP_US),
            busy_merge_us: m.counter(BUSY_MERGE_US),
            busy_reduce_exec_us: m.counter(BUSY_REDUCE_EXEC_US),
        }
    }

    /// The wall windows as `(phase name, µs)` pairs, in execution order,
    /// including zero windows.
    pub fn wall_phases(&self) -> [(&'static str, u64); 7] {
        [
            ("setup", self.wall_setup_us),
            ("spawn", self.wall_spawn_us),
            ("map", self.wall_map_us),
            ("regroup", self.wall_regroup_us),
            ("reduce", self.wall_reduce_us),
            ("commit", self.wall_commit_us),
            ("finalize", self.wall_finalize_us),
        ]
    }

    /// The busy attributions as `(phase name, µs)` pairs.
    pub fn busy_phases(&self) -> [(&'static str, u64); 6] {
        [
            ("map_exec", self.busy_map_exec_us),
            ("spill", self.busy_spill_us),
            ("shuffle_transport", self.busy_shuffle_transport_us),
            ("regroup", self.busy_regroup_us),
            ("merge", self.busy_merge_us),
            ("reduce_exec", self.busy_reduce_exec_us),
        ]
    }

    /// Total wall seconds attributed to named phases (sum of the windows).
    pub fn covered_secs(&self) -> f64 {
        self.wall_phases().iter().map(|(_, us)| *us).sum::<u64>() as f64 / 1e6
    }

    /// Fraction of `wall_secs` the named wall windows account for. The
    /// profiling contract is coverage ≥ 0.95 on every backend. Returns 1.0
    /// for degenerate zero-wall jobs.
    pub fn coverage(&self, wall_secs: f64) -> f64 {
        if wall_secs <= 0.0 {
            return 1.0;
        }
        self.covered_secs() / wall_secs
    }

    /// True when no phase recorded a nonzero value.
    pub fn is_empty(&self) -> bool {
        self.wall_phases().iter().all(|(_, us)| *us == 0)
            && self.busy_phases().iter().all(|(_, us)| *us == 0)
    }

    /// JSON object with the wall windows, busy attributions, byte counters,
    /// and coverage against the given job wall time. Shape:
    /// `{"wall_us": {...}, "busy_us": {...}, "bytes": {...},
    ///   "covered_secs": s, "coverage": f}`.
    pub fn to_json(&self, wall_secs: f64) -> Json {
        let wall = self
            .wall_phases()
            .iter()
            .map(|(name, us)| (name.to_string(), Json::Num(*us as f64)))
            .collect::<Vec<_>>();
        let busy = self
            .busy_phases()
            .iter()
            .map(|(name, us)| (name.to_string(), Json::Num(*us as f64)))
            .collect::<Vec<_>>();
        obj(vec![
            ("wall_us", Json::Obj(wall)),
            ("busy_us", Json::Obj(busy)),
            (
                "bytes",
                obj(vec![
                    ("spill", Json::Num(self.busy_spill_bytes as f64)),
                    (
                        "shuffle_transport",
                        Json::Num(self.busy_shuffle_transport_bytes as f64),
                    ),
                ]),
            ),
            ("covered_secs", Json::Num(self.covered_secs())),
            ("coverage", Json::Num(self.coverage(wall_secs))),
        ])
    }

    /// One-job human-readable rendering, e.g. for `--profile` CLI output.
    pub fn render(&self, job: &str, wall_secs: f64) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "  {job}: {:.1}% of {wall_secs:.3}s wall attributed",
            100.0 * self.coverage(wall_secs)
        );
        let _ = write!(s, "    wall:");
        for (name, us) in self.wall_phases() {
            if us > 0 {
                let _ = write!(s, " {name} {:.3}s", us as f64 / 1e6);
            }
        }
        let _ = writeln!(s);
        let _ = write!(s, "    busy:");
        for (name, us) in self.busy_phases() {
            if us > 0 {
                let _ = write!(s, " {name} {:.3}s", us as f64 / 1e6);
            }
        }
        let _ = writeln!(
            s,
            " | spill {} B, transport {} B",
            self.busy_spill_bytes, self.busy_shuffle_transport_bytes
        );
        s
    }
}

/// Convert a `std::time::Duration`-style seconds value into the integer
/// microseconds stored in profile counters.
pub fn secs_to_us(secs: f64) -> u64 {
    if secs <= 0.0 {
        0
    } else {
        (secs * 1e6).round() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics_with(counters: Vec<(String, u64)>) -> JobMetrics {
        JobMetrics {
            counters,
            ..Default::default()
        }
    }

    #[test]
    fn from_metrics_reads_counters_and_defaults_to_zero() {
        let m = metrics_with(vec![
            (WALL_MAP_US.into(), 1_500_000),
            (WALL_REDUCE_US.into(), 500_000),
            (BUSY_SPILL_BYTES.into(), 4096),
        ]);
        let p = JobProfile::from_metrics(&m);
        assert_eq!(p.wall_map_us, 1_500_000);
        assert_eq!(p.wall_reduce_us, 500_000);
        assert_eq!(p.busy_spill_bytes, 4096);
        assert_eq!(p.wall_setup_us, 0);
        assert_eq!(p.busy_merge_us, 0);
    }

    #[test]
    fn coverage_is_covered_over_wall() {
        let m = metrics_with(vec![
            (WALL_MAP_US.into(), 1_500_000),
            (WALL_REDUCE_US.into(), 480_000),
        ]);
        let p = JobProfile::from_metrics(&m);
        assert!((p.covered_secs() - 1.98).abs() < 1e-9);
        let cov = p.coverage(2.0);
        assert!((cov - 0.99).abs() < 1e-9, "{cov}");
        assert_eq!(p.coverage(0.0), 1.0);
    }

    #[test]
    fn json_and_render_mention_every_phase() {
        let m = metrics_with(vec![
            (WALL_MAP_US.into(), 100),
            (BUSY_SHUFFLE_TRANSPORT_BYTES.into(), 7),
        ]);
        let p = JobProfile::from_metrics(&m);
        let json = p.to_json(1.0).to_string();
        for key in ["wall_us", "busy_us", "bytes", "covered_secs", "coverage"] {
            assert!(json.contains(key), "{json}");
        }
        let text = p.render("job", 1.0);
        assert!(text.contains("wall:"), "{text}");
        assert!(text.contains("transport 7 B"), "{text}");
        assert!(!p.is_empty());
        assert!(JobProfile::default().is_empty());
    }

    #[test]
    fn secs_to_us_rounds_and_clamps() {
        assert_eq!(secs_to_us(-1.0), 0);
        assert_eq!(secs_to_us(0.0000015), 2);
        assert_eq!(secs_to_us(1.5), 1_500_000);
    }
}
