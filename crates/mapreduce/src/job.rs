//! Job specification and builder.

use std::sync::Arc;

use crate::cache::Cache;
use crate::input::SplitSource;
use crate::mapper::Mapper;
use crate::partitioner::{
    hash_partitioner, natural_grouping, natural_sort, GroupEq, PartitionFn, SortCmp,
};
use crate::reducer::{CombineFn, Reducer};

/// Formats one output pair as a text line.
pub type TextFormat<K, V> = Arc<dyn Fn(&K, &V) -> String + Send + Sync>;

/// Renders an intermediate key as a short label for the reduce-key
/// heavy-hitter report (e.g. the prefix-token rank a stage-2 key routes
/// on). Labels are aggregated with a top-k sketch, so many distinct labels
/// are fine; the function should be cheap.
pub type KeyLabel<K> = Arc<dyn Fn(&K) -> String + Send + Sync>;

/// Where a job's reduce output goes.
pub enum Output<K, V> {
    /// Discard output (pure side-effect/metric jobs, engine tests).
    None,
    /// Sequence-file directory: `dir/part-NNNNN` of encoded pairs.
    Seq(String),
    /// Text-file directory: `dir/part-NNNNN` of formatted lines — Hadoop's
    /// `TextOutputFormat`.
    Text(String, TextFormat<K, V>),
}

impl<K, V> Output<K, V> {
    /// Output directory, if any.
    pub fn dir(&self) -> Option<&str> {
        match self {
            Output::None => None,
            Output::Seq(d) | Output::Text(d, _) => Some(d),
        }
    }
}

/// A fully-specified MapReduce job.
///
/// Construct with [`Job::new`] and customize with the builder methods; run
/// with [`crate::Cluster::run`].
pub struct Job<M: Mapper, R: Reducer<Key = M::OutKey, InValue = M::OutValue>> {
    /// Job name (metrics, error labels).
    pub name: String,
    /// Mapper prototype; cloned once per map task.
    pub mapper: M,
    /// Reducer prototype; cloned once per reduce task.
    pub reducer: R,
    /// Optional map-side combiner.
    pub combiner: Option<CombineFn<M::OutKey, M::OutValue>>,
    /// Partition policy for intermediate keys.
    pub partitioner: PartitionFn<M::OutKey>,
    /// Sort order for intermediate keys.
    pub sort_cmp: SortCmp<M::OutKey>,
    /// Grouping policy delimiting reduce calls.
    pub group_eq: GroupEq<M::OutKey>,
    /// Number of reduce tasks; defaults to one wave of the cluster's reduce
    /// slots.
    pub num_reducers: Option<usize>,
    /// Input splits (possibly from several files).
    pub inputs: Vec<SplitSource<M::InKey, M::InValue>>,
    /// Output destination.
    pub output: Output<R::OutKey, R::OutValue>,
    /// Broadcast side data available to all tasks.
    pub cache: Cache,
    /// Optional labeler enabling the reduce-key heavy-hitter report (see
    /// [`crate::JobMetrics::reduce_key_heavy_hitters`]).
    pub key_label: Option<KeyLabel<M::OutKey>>,
    /// Fingerprint of the job's inputs + relevant configuration, recorded
    /// in the output directory's `_SUCCESS` commit manifest. Resume-mode
    /// drivers recompute it and skip the job when the manifest matches.
    /// `None` records fingerprint 0 (manifest still written, never
    /// resumable-by-fingerprint).
    pub fingerprint: Option<u64>,
    /// How a worker *process* rebuilds this job (see [`crate::backend`]'s
    /// process backend): the name of a registered job factory plus an
    /// opaque payload the factory decodes. Jobs without a remote spec run
    /// in-process even under the process backend (documented fallback).
    pub remote: Option<RemoteJobSpec>,
}

/// Recipe for reconstructing a job inside a worker process.
///
/// The driver cannot ship closures over a pipe, so remote-capable jobs
/// instead register a named factory (see [`crate::register_job_factory`])
/// that rebuilds the full [`Job`] — mapper, reducer, policies, *and*
/// inputs — from this payload and the shared disk-backed DFS. Both sides
/// derive splits from the same DFS state, so task ids line up.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RemoteJobSpec {
    /// Registered factory name (must match on driver and worker).
    pub factory: String,
    /// Opaque factory input, typically a `Codec`-encoded parameter struct.
    pub payload: Vec<u8>,
}

impl<M, R> Job<M, R>
where
    M: Mapper,
    R: Reducer<Key = M::OutKey, InValue = M::OutValue>,
{
    /// A job with default policies: hash partitioning, natural sort, full-key
    /// grouping, no combiner, discarded output.
    pub fn new(name: impl Into<String>, mapper: M, reducer: R) -> Self {
        Job {
            name: name.into(),
            mapper,
            reducer,
            combiner: None,
            partitioner: hash_partitioner::<M::OutKey>(),
            sort_cmp: natural_sort::<M::OutKey>(),
            group_eq: natural_grouping::<M::OutKey>(),
            num_reducers: None,
            inputs: Vec::new(),
            output: Output::None,
            cache: Cache::new(),
            key_label: None,
            fingerprint: None,
            remote: None,
        }
    }

    /// Declare how a worker process rebuilds this job: a registered factory
    /// name plus the payload it decodes. Required for a job to execute
    /// out-of-process under the process backend.
    pub fn remote(mut self, factory: impl Into<String>, payload: Vec<u8>) -> Self {
        self.remote = Some(RemoteJobSpec {
            factory: factory.into(),
            payload,
        });
        self
    }

    /// Add input splits.
    pub fn inputs(mut self, splits: Vec<SplitSource<M::InKey, M::InValue>>) -> Self {
        self.inputs.extend(splits);
        self
    }

    /// Set the combiner.
    pub fn combiner(mut self, c: CombineFn<M::OutKey, M::OutValue>) -> Self {
        self.combiner = Some(c);
        self
    }

    /// Set a custom partitioner.
    pub fn partitioner(mut self, p: PartitionFn<M::OutKey>) -> Self {
        self.partitioner = p;
        self
    }

    /// Set a custom sort comparator.
    pub fn sort_cmp(mut self, c: SortCmp<M::OutKey>) -> Self {
        self.sort_cmp = c;
        self
    }

    /// Set a custom grouping comparator.
    pub fn group_eq(mut self, g: GroupEq<M::OutKey>) -> Self {
        self.group_eq = g;
        self
    }

    /// Fix the number of reduce tasks (e.g. 1 for global sorts).
    pub fn reducers(mut self, n: usize) -> Self {
        self.num_reducers = Some(n);
        self
    }

    /// Write output as a sequence-file directory.
    pub fn output_seq(mut self, dir: impl Into<String>) -> Self {
        self.output = Output::Seq(dir.into());
        self
    }

    /// Write output as formatted text.
    pub fn output_text(
        mut self,
        dir: impl Into<String>,
        fmt: TextFormat<R::OutKey, R::OutValue>,
    ) -> Self {
        self.output = Output::Text(dir.into(), fmt);
        self
    }

    /// Attach broadcast side data.
    pub fn cache(mut self, cache: Cache) -> Self {
        self.cache = cache;
        self
    }

    /// Label intermediate keys for the reduce-key heavy-hitter report.
    pub fn key_label(mut self, f: KeyLabel<M::OutKey>) -> Self {
        self.key_label = Some(f);
        self
    }

    /// Record an input/config fingerprint in the job's commit manifest
    /// (see [`crate::JobManifest`]).
    pub fn fingerprint(mut self, fp: u64) -> Self {
        self.fingerprint = Some(fp);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapper::IdentityMapper;
    use crate::reducer::IdentityReducer;

    #[test]
    fn builder_sets_fields() {
        let job = Job::new(
            "test",
            IdentityMapper::<u32, u32>::new(),
            IdentityReducer::<u32, u32>::new(),
        )
        .reducers(3)
        .output_seq("/out");
        assert_eq!(job.name, "test");
        assert_eq!(job.num_reducers, Some(3));
        assert_eq!(job.output.dir(), Some("/out"));
    }

    #[test]
    fn default_output_is_none() {
        let job = Job::new(
            "t",
            IdentityMapper::<u32, u32>::new(),
            IdentityReducer::<u32, u32>::new(),
        );
        assert!(job.output.dir().is_none());
        assert!(job.inputs.is_empty());
    }
}
