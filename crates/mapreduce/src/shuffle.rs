//! Bounded shuffle channels for the sharded execution backend.
//!
//! The sharded backend streams map-side spill runs to reducer-side merge
//! queues instead of materializing all map output before any reduce work
//! starts. Each reduce partition owns one bounded multi-producer
//! single-consumer channel: map workers push `(map_task, spill, run)`
//! triples as spills finish, and block when the queue is full — natural
//! backpressure against a slow reducer. The channel **closes** when every
//! sender has been dropped (i.e. every map task finished); the receiver
//! then drains whatever is buffered and observes end-of-stream.
//!
//! Built directly on [`std::sync::Mutex`] + [`std::sync::Condvar`] so it
//! works in this dependency-free build; the protocol is the classic
//! two-condvar bounded queue (`not_full` / `not_empty`).

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Lock a mutex, recovering from poisoning instead of propagating it.
///
/// A task-thread panic is a *classified* failure — the attempt boundary
/// catches it and the job fails (or retries) with
/// [`crate::MrError::TaskPanicked`]. If the panicking thread happened to
/// hold a channel or semaphore lock, the shared state is still a plain
/// queue/counter that every operation leaves consistent, so the poison flag
/// carries no information here. Propagating it instead turned a classified
/// task failure into an unclassified driver abort.
fn lock_recovering<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

struct State<T> {
    queue: VecDeque<T>,
    /// Live [`Sender`] clones; 0 means the channel is closed for writing.
    senders: usize,
    /// Whether the [`Receiver`] still exists.
    receiver_alive: bool,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    capacity: usize,
    not_full: Condvar,
    not_empty: Condvar,
}

/// Create a bounded MPSC channel with room for `capacity` queued items.
///
/// [`Sender::send`] blocks while the queue is full; [`Receiver::recv`]
/// blocks while it is empty and at least one sender is alive, and returns
/// `None` once the queue is drained **and** every sender has been dropped.
pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    assert!(capacity >= 1, "shuffle channel capacity must be at least 1");
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            senders: 1,
            receiver_alive: true,
        }),
        capacity,
        not_full: Condvar::new(),
        not_empty: Condvar::new(),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

/// The value handed back by [`Sender::send`] when the receiver is gone.
#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Producing half of a bounded shuffle channel. Cloneable; the channel
/// closes when the last clone is dropped.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Sender<T> {
    /// Enqueue `value`, blocking while the channel is at capacity. Returns
    /// the value as `Err` if the receiver has been dropped (the run has no
    /// destination — the caller is expected to abort).
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut state = lock_recovering(&self.shared.state);
        while state.queue.len() >= self.shared.capacity && state.receiver_alive {
            state = self
                .shared
                .not_full
                .wait(state)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        if !state.receiver_alive {
            return Err(SendError(value));
        }
        state.queue.push_back(value);
        debug_assert!(state.queue.len() <= self.shared.capacity);
        drop(state);
        self.shared.not_empty.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        let mut state = lock_recovering(&self.shared.state);
        state.senders += 1;
        drop(state);
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = lock_recovering(&self.shared.state);
        state.senders -= 1;
        let closed = state.senders == 0;
        drop(state);
        if closed {
            // Wake a receiver blocked in `recv` so it can observe close.
            self.shared.not_empty.notify_all();
        }
    }
}

/// Consuming half of a bounded shuffle channel.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Receiver<T> {
    /// Dequeue the next value, blocking while the channel is empty but
    /// still open. Returns `None` only after the channel is closed (all
    /// senders dropped) **and** every buffered value has been drained.
    pub fn recv(&self) -> Option<T> {
        let mut state = lock_recovering(&self.shared.state);
        loop {
            if let Some(value) = state.queue.pop_front() {
                drop(state);
                self.shared.not_full.notify_one();
                return Some(value);
            }
            if state.senders == 0 {
                return None;
            }
            state = self
                .shared
                .not_empty
                .wait(state)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut state = lock_recovering(&self.shared.state);
        state.receiver_alive = false;
        drop(state);
        // Unblock producers so they can observe the dead receiver.
        self.shared.not_full.notify_all();
    }
}

/// Counting semaphore gating how many reduce tasks execute concurrently in
/// the sharded backend. Callers order their acquisitions (heaviest
/// partition first) before contending, so a plain counting semaphore
/// suffices — no queue fairness is needed for determinism because task
/// *outputs* are order-independent.
pub(crate) struct Semaphore {
    permits: Mutex<usize>,
    available: Condvar,
}

impl Semaphore {
    pub(crate) fn new(permits: usize) -> Self {
        Semaphore {
            permits: Mutex::new(permits.max(1)),
            available: Condvar::new(),
        }
    }

    /// Block until a permit is free; the permit is returned when the guard
    /// drops.
    pub(crate) fn acquire(&self) -> SemaphoreGuard<'_> {
        let mut permits = lock_recovering(&self.permits);
        while *permits == 0 {
            permits = self
                .available
                .wait(permits)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        *permits -= 1;
        SemaphoreGuard { semaphore: self }
    }
}

pub(crate) struct SemaphoreGuard<'a> {
    semaphore: &'a Semaphore,
}

impl Drop for SemaphoreGuard<'_> {
    fn drop(&mut self) {
        let mut permits = lock_recovering(&self.semaphore.permits);
        *permits += 1;
        drop(permits);
        self.semaphore.available.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::thread;
    use std::time::Duration;

    #[test]
    fn close_then_drain_delivers_every_buffered_item() {
        // Close/drain path: all senders drop *before* the receiver starts
        // reading. Everything buffered must still come out, then `None`.
        let (tx, rx) = bounded::<u32>(16);
        for i in 0..5 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let got: Vec<u32> = std::iter::from_fn(|| rx.recv()).collect();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
        assert_eq!(rx.recv(), None, "closed channel stays closed");
    }

    /// Interleaving test for the close/drain race: senders drop at staggered,
    /// injected delays while the receiver is mid-drain — sometimes blocking
    /// on an empty-but-open channel, sometimes observing the close while
    /// items are still buffered. No item may be lost and end-of-stream must
    /// be reported exactly once, under every interleaving the delays create.
    #[test]
    fn staggered_sender_drops_never_lose_items_or_hang() {
        for delay_us in [0u64, 50, 200, 1000] {
            let (tx, rx) = bounded::<u64>(2);
            let mut producers = Vec::new();
            for p in 0..3u64 {
                let tx = tx.clone();
                producers.push(thread::spawn(move || {
                    for i in 0..10u64 {
                        tx.send(p * 100 + i).unwrap();
                        if i % 3 == p % 3 {
                            thread::sleep(Duration::from_micros(delay_us));
                        }
                    }
                    // Injected delay between last send and the drop that
                    // may close the channel: the receiver can block on an
                    // empty queue in exactly this window.
                    thread::sleep(Duration::from_micros(delay_us * p));
                }));
            }
            drop(tx);
            let mut got = Vec::new();
            while let Some(v) = rx.recv() {
                got.push(v);
                if got.len() % 7 == 0 {
                    thread::sleep(Duration::from_micros(delay_us));
                }
            }
            for producer in producers {
                producer.join().unwrap();
            }
            got.sort_unstable();
            let mut want: Vec<u64> = (0..3)
                .flat_map(|p| (0..10).map(move |i| p * 100 + i))
                .collect();
            want.sort_unstable();
            assert_eq!(got, want, "delay {delay_us}us lost or duplicated runs");
            assert_eq!(rx.recv(), None);
        }
    }

    #[test]
    fn send_blocks_at_capacity_until_receiver_drains() {
        let (tx, rx) = bounded::<u32>(1);
        tx.send(1).unwrap();
        let sent_second = Arc::new(AtomicUsize::new(0));
        let flag = Arc::clone(&sent_second);
        let producer = thread::spawn(move || {
            tx.send(2).unwrap(); // must block: capacity 1, queue full
            flag.store(1, Ordering::SeqCst);
        });
        // Receiving the first item is what frees the producer.
        assert_eq!(rx.recv(), Some(1));
        assert_eq!(rx.recv(), Some(2));
        producer.join().unwrap();
        assert_eq!(sent_second.load(Ordering::SeqCst), 1);
        assert_eq!(rx.recv(), None);
    }

    #[test]
    fn send_to_dropped_receiver_returns_the_value() {
        let (tx, rx) = bounded::<String>(1);
        drop(rx);
        assert_eq!(
            tx.send("orphan".to_string()),
            Err(SendError("orphan".to_string()))
        );
    }

    #[test]
    fn dropping_receiver_unblocks_a_full_sender() {
        let (tx, rx) = bounded::<u32>(1);
        tx.send(1).unwrap();
        let producer = thread::spawn(move || tx.send(2));
        thread::sleep(Duration::from_millis(10));
        drop(rx);
        assert_eq!(producer.join().unwrap(), Err(SendError(2)));
    }

    /// Regression: a panic while holding the channel lock must not cascade
    /// into every later send/recv panicking on poison. The queue state is
    /// always consistent, so operations recover and proceed.
    #[test]
    fn channel_recovers_from_a_poisoned_lock() {
        let (tx, rx) = bounded::<u32>(4);
        tx.send(1).unwrap();
        // Poison the state mutex: panic in a thread that holds it.
        let shared = Arc::clone(&tx.shared);
        let _ = thread::spawn(move || {
            let _guard = shared.state.lock().unwrap();
            panic!("worker died holding the shuffle lock");
        })
        .join();
        assert!(
            tx.shared.state.is_poisoned(),
            "setup: lock must be poisoned"
        );
        // Every operation still works: send, clone, recv, drops.
        tx.send(2).unwrap();
        let tx2 = tx.clone();
        tx2.send(3).unwrap();
        drop(tx2);
        drop(tx);
        let got: Vec<u32> = std::iter::from_fn(|| rx.recv()).collect();
        assert_eq!(got, vec![1, 2, 3]);
        assert_eq!(rx.recv(), None);
    }

    #[test]
    fn semaphore_recovers_from_a_poisoned_lock() {
        let sem = Arc::new(Semaphore::new(1));
        let poisoner = Arc::clone(&sem);
        let _ = thread::spawn(move || {
            let _guard = poisoner.permits.lock().unwrap();
            panic!("worker died holding the semaphore lock");
        })
        .join();
        assert!(sem.permits.is_poisoned(), "setup: lock must be poisoned");
        // Acquire and release still work; the permit count is intact.
        drop(sem.acquire());
        drop(sem.acquire());
    }

    #[test]
    fn semaphore_bounds_concurrency() {
        let sem = Arc::new(Semaphore::new(2));
        let peak = Arc::new(AtomicUsize::new(0));
        let live = Arc::new(AtomicUsize::new(0));
        let mut workers = Vec::new();
        for _ in 0..8 {
            let (sem, peak, live) = (Arc::clone(&sem), Arc::clone(&peak), Arc::clone(&live));
            workers.push(thread::spawn(move || {
                let _guard = sem.acquire();
                let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                peak.fetch_max(now, Ordering::SeqCst);
                thread::sleep(Duration::from_millis(2));
                live.fetch_sub(1, Ordering::SeqCst);
            }));
        }
        for w in workers {
            w.join().unwrap();
        }
        assert!(peak.load(Ordering::SeqCst) <= 2, "semaphore leaked permits");
    }
}
