//! Spill runs and the reduce-side merge.
//!
//! A *run* is a sorted sequence of encoded `(key, value)` pairs — what a map
//! task spills for one partition. The reduce side performs a k-way merge of
//! all runs for its partition and walks the merged stream group by group,
//! exactly like Hadoop's sort/merge phase. Keys are decoded for comparison,
//! which charges the same comparator cost a real shuffle pays.

use bytes::Bytes;

use crate::codec::{ByteReader, Codec};
use crate::error::{MrError, Result};
use crate::kv::{Key, Value};
use crate::partitioner::{GroupEq, SortCmp};

/// A sorted, encoded sequence of `(key, value)` pairs.
#[derive(Debug, Clone)]
pub struct Run {
    /// Encoded pairs, back to back.
    pub data: Bytes,
    /// Number of pairs in the run.
    pub records: usize,
}

impl Run {
    /// Encode a slice of pairs (assumed already sorted) into a run.
    pub fn encode<K: Codec, V: Codec>(pairs: &[(K, V)]) -> Run {
        let mut buf = Vec::with_capacity(pairs.len() * 16);
        for (k, v) in pairs {
            k.encode(&mut buf);
            v.encode(&mut buf);
        }
        Run {
            data: Bytes::from(buf),
            records: pairs.len(),
        }
    }

    /// Encoded size in bytes.
    pub fn len_bytes(&self) -> usize {
        self.data.len()
    }
}

struct RunCursor<K, V> {
    data: Bytes,
    pos: usize,
    remaining: usize,
    head: Option<(K, V)>,
}

impl<K: Value, V: Value> RunCursor<K, V> {
    fn new(run: Run) -> Result<Self> {
        let mut c = RunCursor {
            data: run.data,
            pos: 0,
            remaining: run.records,
            head: None,
        };
        c.advance()?;
        Ok(c)
    }

    /// Decode the next pair into `head` (or leave `None` at end).
    fn advance(&mut self) -> Result<()> {
        if self.remaining == 0 {
            self.head = None;
            return Ok(());
        }
        let slice = &self.data[self.pos..];
        let mut r = ByteReader::new(slice);
        let k = K::decode(&mut r)?;
        let v = V::decode(&mut r)?;
        self.pos += r.position();
        self.remaining -= 1;
        self.head = Some((k, v));
        Ok(())
    }
}

/// K-way merge over sorted runs, with one-pair lookahead for grouping.
pub struct MergeStream<K: Value, V: Value> {
    cursors: Vec<RunCursor<K, V>>,
    cmp: SortCmp<K>,
    /// Pairs handed out so far.
    records_read: u64,
}

impl<K: Key, V: Value> MergeStream<K, V> {
    /// Build a merge over the given runs using the job's sort comparator.
    pub fn new(runs: Vec<Run>, cmp: SortCmp<K>) -> Result<Self> {
        let mut cursors = Vec::with_capacity(runs.len());
        for run in runs {
            let c = RunCursor::new(run)?;
            if c.head.is_some() {
                cursors.push(c);
            }
        }
        Ok(MergeStream {
            cursors,
            cmp,
            records_read: 0,
        })
    }

    fn min_index(&self) -> Option<usize> {
        let mut best: Option<usize> = None;
        for (i, c) in self.cursors.iter().enumerate() {
            let Some((k, _)) = &c.head else { continue };
            match best {
                None => best = Some(i),
                Some(b) => {
                    let (bk, _) = self.cursors[b].head.as_ref().expect("head");
                    if (self.cmp)(k, bk) == std::cmp::Ordering::Less {
                        best = Some(i);
                    }
                }
            }
        }
        best
    }

    /// The smallest key not yet consumed.
    pub fn peek_key(&self) -> Option<&K> {
        self.min_index()
            .map(|i| &self.cursors[i].head.as_ref().expect("head").0)
    }

    /// Pop the smallest pair.
    pub fn next_pair(&mut self) -> Result<Option<(K, V)>> {
        let Some(i) = self.min_index() else {
            return Ok(None);
        };
        let pair = self.cursors[i].head.take().expect("head");
        self.cursors[i].advance()?;
        self.records_read += 1;
        Ok(Some(pair))
    }

    /// Pairs consumed so far.
    pub fn records_read(&self) -> u64 {
        self.records_read
    }
}

/// Streaming iterator over one reduce group. Yields `(key, value)` pairs
/// while the stream's next key is group-equal to the group key; never reads
/// past the group boundary.
pub struct GroupValues<'s, K: Value, V: Value> {
    stream: &'s mut MergeStream<K, V>,
    group_key: K,
    group_eq: GroupEq<K>,
    error: Option<MrError>,
    done: bool,
}

impl<'s, K: Key, V: Value> GroupValues<'s, K, V> {
    /// Open the group starting at the stream's current position.
    pub fn new(stream: &'s mut MergeStream<K, V>, group_key: K, group_eq: GroupEq<K>) -> Self {
        GroupValues {
            stream,
            group_key,
            group_eq,
            error: None,
            done: false,
        }
    }

    /// Consume any records the reducer left unread, so the engine can move
    /// to the next group. Returns a decode error if one occurred.
    pub fn drain(mut self) -> Result<u64> {
        let mut skipped = 0;
        while self.next().is_some() {
            skipped += 1;
        }
        match self.error.take() {
            Some(e) => Err(e),
            None => Ok(skipped),
        }
    }
}

impl<K: Key, V: Value> Iterator for GroupValues<'_, K, V> {
    type Item = (K, V);

    fn next(&mut self) -> Option<(K, V)> {
        if self.done {
            return None;
        }
        let belongs = match self.stream.peek_key() {
            Some(k) => (self.group_eq)(&self.group_key, k),
            None => false,
        };
        if !belongs {
            self.done = true;
            return None;
        }
        match self.stream.next_pair() {
            Ok(pair) => pair,
            Err(e) => {
                self.error = Some(e);
                self.done = true;
                None
            }
        }
    }
}

/// Sort a buffer of pairs by the job's comparator (stable, so equal keys keep
/// emission order) and apply the combiner to each equal-key group.
pub fn sort_and_combine<K: Key, V: Value>(
    mut pairs: Vec<(K, V)>,
    cmp: &SortCmp<K>,
    combiner: Option<&crate::reducer::CombineFn<K, V>>,
    combine_in: &mut u64,
    combine_out: &mut u64,
) -> Vec<(K, V)> {
    pairs.sort_by(|a, b| cmp(&a.0, &b.0));
    let Some(combine) = combiner else {
        return pairs;
    };
    let mut out = Vec::with_capacity(pairs.len());
    let mut iter = pairs.into_iter().peekable();
    while let Some((key, first)) = iter.next() {
        let mut group = vec![first];
        while let Some((k, _)) = iter.peek() {
            if cmp(&key, k) == std::cmp::Ordering::Equal {
                group.push(iter.next().expect("peeked").1);
            } else {
                break;
            }
        }
        *combine_in += group.len() as u64;
        let combined = combine(&key, group);
        *combine_out += combined.len() as u64;
        out.extend(combined.into_iter().map(|v| (key.clone(), v)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partitioner::{natural_grouping, natural_sort};
    use crate::reducer::sum_combiner;

    fn run_of(pairs: Vec<(u32, String)>) -> Run {
        Run::encode(&pairs)
    }

    #[test]
    fn run_encode_counts() {
        let r = run_of(vec![(1, "a".into()), (2, "b".into())]);
        assert_eq!(r.records, 2);
        assert!(r.len_bytes() > 0);
    }

    #[test]
    fn merge_interleaves_sorted_runs() {
        let r1 = run_of(vec![(1, "a".into()), (4, "d".into()), (6, "f".into())]);
        let r2 = run_of(vec![(2, "b".into()), (3, "c".into()), (5, "e".into())]);
        let mut m: MergeStream<u32, String> =
            MergeStream::new(vec![r1, r2], natural_sort::<u32>()).unwrap();
        let mut keys = Vec::new();
        while let Some((k, _)) = m.next_pair().unwrap() {
            keys.push(k);
        }
        assert_eq!(keys, vec![1, 2, 3, 4, 5, 6]);
        assert_eq!(m.records_read(), 6);
    }

    #[test]
    fn merge_handles_duplicates_and_empty_runs() {
        let r1 = run_of(vec![(1, "a".into()), (1, "b".into())]);
        let r2 = run_of(vec![]);
        let r3 = run_of(vec![(1, "c".into()), (2, "d".into())]);
        let mut m: MergeStream<u32, String> =
            MergeStream::new(vec![r1, r2, r3], natural_sort::<u32>()).unwrap();
        let mut pairs = Vec::new();
        while let Some(p) = m.next_pair().unwrap() {
            pairs.push(p);
        }
        assert_eq!(pairs.len(), 4);
        assert!(pairs[..3].iter().all(|(k, _)| *k == 1));
        assert_eq!(pairs[3].0, 2);
    }

    #[test]
    fn group_values_stops_at_boundary() {
        let r = run_of(vec![(1, "a".into()), (1, "b".into()), (2, "c".into())]);
        let mut m: MergeStream<u32, String> =
            MergeStream::new(vec![r], natural_sort::<u32>()).unwrap();
        let first = m.peek_key().cloned().unwrap();
        let g = GroupValues::new(&mut m, first, natural_grouping::<u32>());
        let vals: Vec<String> = g.map(|(_, v)| v).collect();
        assert_eq!(vals, vec!["a", "b"]);
        // Stream still holds the next group.
        assert_eq!(m.peek_key(), Some(&2));
    }

    #[test]
    fn group_values_drain_skips_unread() {
        let r = run_of(vec![(1, "a".into()), (1, "b".into()), (2, "c".into())]);
        let mut m: MergeStream<u32, String> =
            MergeStream::new(vec![r], natural_sort::<u32>()).unwrap();
        let first = m.peek_key().cloned().unwrap();
        let g = GroupValues::new(&mut m, first, natural_grouping::<u32>());
        // Reducer reads nothing; drain skips both records of group 1.
        assert_eq!(g.drain().unwrap(), 2);
        assert_eq!(m.peek_key(), Some(&2));
    }

    #[test]
    fn secondary_sort_grouping() {
        // Composite keys (group, length): sort on both, group on the first.
        let pairs: Vec<((u32, u32), String)> = vec![
            ((1, 3), "len3".into()),
            ((1, 5), "len5".into()),
            ((2, 1), "other".into()),
        ];
        let r = Run::encode(&pairs);
        let mut m: MergeStream<(u32, u32), String> =
            MergeStream::new(vec![r], natural_sort::<(u32, u32)>()).unwrap();
        let first = m.peek_key().cloned().unwrap();
        let group_eq = crate::partitioner::group_by(|k: &(u32, u32)| k.0);
        let g = GroupValues::new(&mut m, first, group_eq);
        let lens: Vec<u32> = g.map(|(k, _)| k.1).collect();
        assert_eq!(lens, vec![3, 5], "values stream in length order");
        assert_eq!(m.peek_key(), Some(&(2, 1)));
    }

    #[test]
    fn sort_and_combine_applies_combiner_per_group() {
        let pairs = vec![
            ("b".to_string(), 1u64),
            ("a".to_string(), 2),
            ("b".to_string(), 3),
        ];
        let mut cin = 0;
        let mut cout = 0;
        let out = sort_and_combine(
            pairs,
            &natural_sort::<String>(),
            Some(&sum_combiner::<String>()),
            &mut cin,
            &mut cout,
        );
        assert_eq!(out, vec![("a".to_string(), 2), ("b".to_string(), 4)]);
        assert_eq!(cin, 3);
        assert_eq!(cout, 2);
    }

    #[test]
    fn sort_without_combiner_keeps_all_records() {
        let pairs = vec![(2u32, 1u64), (1, 2), (2, 3)];
        let mut cin = 0;
        let mut cout = 0;
        let out = sort_and_combine(pairs, &natural_sort::<u32>(), None, &mut cin, &mut cout);
        assert_eq!(out, vec![(1, 2), (2, 1), (2, 3)]);
        assert_eq!(cin, 0);
    }
}

/// Merge several sorted runs into a single run (one Hadoop merge pass):
/// streams the k-way merge and re-encodes, preserving order and duplicates.
pub fn merge_into_one<K: Key, V: Value>(runs: Vec<Run>, cmp: SortCmp<K>) -> Result<Run> {
    let records: usize = runs.iter().map(|r| r.records).sum();
    let bytes: usize = runs.iter().map(Run::len_bytes).sum();
    let mut stream: MergeStream<K, V> = MergeStream::new(runs, cmp)?;
    let mut buf = Vec::with_capacity(bytes);
    while let Some((k, v)) = stream.next_pair()? {
        k.encode(&mut buf);
        v.encode(&mut buf);
    }
    Ok(Run {
        data: Bytes::from(buf),
        records,
    })
}

/// Reduce the number of runs to at most `factor` using multi-pass merging —
/// Hadoop's `io.sort.factor` behaviour: while too many runs exist, the
/// smallest `factor` runs are merged into one. Returns the final runs and
/// the number of intermediate merge passes performed.
pub fn merge_to_factor<K: Key, V: Value>(
    mut runs: Vec<Run>,
    cmp: &SortCmp<K>,
    factor: usize,
) -> Result<(Vec<Run>, u64)> {
    let factor = factor.max(2);
    let mut passes = 0u64;
    while runs.len() > factor {
        // Merge the smallest runs first (minimizes total merge I/O).
        runs.sort_by_key(|r| std::cmp::Reverse(r.len_bytes()));
        let take = factor.min(runs.len() - factor + 1);
        let batch: Vec<Run> = (0..take).map(|_| runs.pop().expect("non-empty")).collect();
        runs.push(merge_into_one::<K, V>(batch, cmp.clone())?);
        passes += 1;
    }
    Ok((runs, passes))
}

#[cfg(test)]
mod merge_tests {
    use super::*;
    use crate::partitioner::natural_sort;

    fn sorted_run(start: u32, step: u32, n: u32) -> Run {
        let pairs: Vec<(u32, u32)> = (0..n).map(|i| (start + i * step, i)).collect();
        Run::encode(&pairs)
    }

    fn drain(runs: Vec<Run>) -> Vec<u32> {
        let mut m: MergeStream<u32, u32> = MergeStream::new(runs, natural_sort::<u32>()).unwrap();
        let mut keys = Vec::new();
        while let Some((k, _)) = m.next_pair().unwrap() {
            keys.push(k);
        }
        keys
    }

    #[test]
    fn merge_into_one_preserves_order_and_count() {
        let runs = vec![
            sorted_run(0, 3, 10),
            sorted_run(1, 3, 10),
            sorted_run(2, 3, 10),
        ];
        let merged = merge_into_one::<u32, u32>(runs, natural_sort::<u32>()).unwrap();
        assert_eq!(merged.records, 30);
        let keys = drain(vec![merged]);
        assert_eq!(keys, (0..30).collect::<Vec<u32>>());
    }

    #[test]
    fn merge_to_factor_bounds_run_count() {
        let runs: Vec<Run> = (0..20).map(|i| sorted_run(i, 20, 15)).collect();
        let expected = drain(runs.clone());
        let (merged, passes) =
            merge_to_factor::<u32, u32>(runs, &natural_sort::<u32>(), 4).unwrap();
        assert!(merged.len() <= 4, "got {} runs", merged.len());
        assert!(passes > 0);
        assert_eq!(drain(merged), expected, "multi-pass merge must not reorder");
    }

    #[test]
    fn merge_to_factor_noop_when_few_runs() {
        let runs = vec![sorted_run(0, 1, 5), sorted_run(100, 1, 5)];
        let (merged, passes) =
            merge_to_factor::<u32, u32>(runs, &natural_sort::<u32>(), 8).unwrap();
        assert_eq!(merged.len(), 2);
        assert_eq!(passes, 0);
    }

    #[test]
    fn merge_to_factor_handles_empty() {
        let (merged, passes) =
            merge_to_factor::<u32, u32>(Vec::new(), &natural_sort::<u32>(), 4).unwrap();
        assert!(merged.is_empty());
        assert_eq!(passes, 0);
    }
}
