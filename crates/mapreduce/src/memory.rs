//! Per-task memory budgeting.
//!
//! The paper devotes Section 5 to the case where a reducer's working set does
//! not fit in its task heap, and Section 6.2 observes the OPRJ variant dying
//! with an `OutOfMemoryError` once the broadcast RID-pair list grows too
//! large. To reproduce those behaviours deterministically the engine gives
//! every task a [`MemoryGauge`]: user code *charges* the gauge for the data
//! it decides to hold, and the charge fails with
//! [`MrError::OutOfMemory`](crate::MrError::OutOfMemory) once the budget is
//! exceeded — independent of how much physical RAM the host has.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::error::{MrError, Result};

/// Tracks bytes a task has chosen to hold against its budget.
///
/// Cloning shares the underlying accounting, so a gauge can be handed to
/// helper structures (indexes, buffers) owned by the same task.
#[derive(Clone)]
pub struct MemoryGauge {
    used: Arc<AtomicU64>,
    high_water: Arc<AtomicU64>,
    budget: u64,
    task: Arc<str>,
}

impl MemoryGauge {
    /// A gauge with the given byte budget. `task` labels OOM errors.
    pub fn new(task: impl Into<Arc<str>>, budget: u64) -> Self {
        MemoryGauge {
            used: Arc::new(AtomicU64::new(0)),
            high_water: Arc::new(AtomicU64::new(0)),
            budget,
            task: task.into(),
        }
    }

    /// An effectively unlimited gauge (used when no budget is configured).
    pub fn unlimited(task: impl Into<Arc<str>>) -> Self {
        Self::new(task, u64::MAX)
    }

    /// Account for `bytes` of newly-held data, failing if the budget would
    /// be exceeded. On failure nothing is charged.
    pub fn charge(&self, bytes: u64) -> Result<()> {
        let prev = self.used.fetch_add(bytes, Ordering::Relaxed);
        let now = prev + bytes;
        if now > self.budget {
            self.used.fetch_sub(bytes, Ordering::Relaxed);
            return Err(MrError::OutOfMemory {
                task: self.task.to_string(),
                requested: now,
                budget: self.budget,
                // Budget accounting is deterministic: the same attempt
                // would charge the same bytes, so retries cannot help.
                transient: false,
            });
        }
        self.high_water.fetch_max(now, Ordering::Relaxed);
        Ok(())
    }

    /// Check whether `bytes` more would fit, without charging.
    pub fn would_fit(&self, bytes: u64) -> bool {
        self.used.load(Ordering::Relaxed).saturating_add(bytes) <= self.budget
    }

    /// Release previously charged bytes.
    pub fn release(&self, bytes: u64) {
        let prev = self.used.fetch_sub(bytes, Ordering::Relaxed);
        debug_assert!(prev >= bytes, "releasing more than charged");
    }

    /// Bytes currently charged.
    pub fn used(&self) -> u64 {
        self.used.load(Ordering::Relaxed)
    }

    /// Largest number of bytes ever simultaneously charged.
    pub fn high_water(&self) -> u64 {
        self.high_water.load(Ordering::Relaxed)
    }

    /// The configured budget.
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// Remaining headroom in bytes.
    pub fn available(&self) -> u64 {
        self.budget.saturating_sub(self.used())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_and_release_track_usage() {
        let g = MemoryGauge::new("t", 100);
        g.charge(60).unwrap();
        assert_eq!(g.used(), 60);
        assert_eq!(g.available(), 40);
        g.release(20);
        assert_eq!(g.used(), 40);
        assert_eq!(g.high_water(), 60);
    }

    #[test]
    fn over_budget_charge_fails_and_rolls_back() {
        let g = MemoryGauge::new("reduce-1", 100);
        g.charge(90).unwrap();
        let err = g.charge(20).unwrap_err();
        assert!(err.is_out_of_memory());
        match err {
            MrError::OutOfMemory {
                task,
                requested,
                budget,
                transient,
            } => {
                assert_eq!(task, "reduce-1");
                assert_eq!(requested, 110);
                assert_eq!(budget, 100);
                assert!(!transient, "gauge OOM is deterministic");
            }
            other => panic!("unexpected error {other:?}"),
        }
        // Rolled back: another small charge still fits.
        assert_eq!(g.used(), 90);
        g.charge(10).unwrap();
    }

    #[test]
    fn would_fit_does_not_charge() {
        let g = MemoryGauge::new("t", 10);
        assert!(g.would_fit(10));
        assert!(!g.would_fit(11));
        assert_eq!(g.used(), 0);
    }

    #[test]
    fn unlimited_gauge_never_fails() {
        let g = MemoryGauge::unlimited("t");
        g.charge(u64::MAX / 2).unwrap();
        assert!(g.would_fit(u64::MAX / 4));
    }

    #[test]
    fn clones_share_accounting() {
        let g = MemoryGauge::new("t", 100);
        let g2 = g.clone();
        g2.charge(70).unwrap();
        assert_eq!(g.used(), 70);
        assert!(g.charge(40).is_err());
    }
}
