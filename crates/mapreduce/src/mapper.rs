//! The `Mapper` trait and adapters.

use std::marker::PhantomData;

use crate::error::Result;
use crate::kv::{Key, Value};
use crate::task::{Emit, TaskContext};

/// A map function: `map(k1, v1) -> list(k2, v2)`.
///
/// One instance is cloned per map task; `setup`/`cleanup` bracket the task
/// exactly as in Hadoop (the paper's stage-2 mappers load the token ordering
/// in an initialization function; OPTO's reducer emits in tear-down).
pub trait Mapper: Clone + Send + 'static {
    /// Input key type (byte offset for text inputs).
    type InKey: Value;
    /// Input value type (the line for text inputs).
    type InValue: Value;
    /// Intermediate key.
    type OutKey: Key;
    /// Intermediate value.
    type OutValue: Value;

    /// Called once per task before any input record.
    fn setup(&mut self, _ctx: &TaskContext) -> Result<()> {
        Ok(())
    }

    /// Called for every input record.
    fn map(
        &mut self,
        key: &Self::InKey,
        value: &Self::InValue,
        out: &mut dyn Emit<Self::OutKey, Self::OutValue>,
        ctx: &TaskContext,
    ) -> Result<()>;

    /// Called once per task after the last input record.
    fn cleanup(
        &mut self,
        _out: &mut dyn Emit<Self::OutKey, Self::OutValue>,
        _ctx: &TaskContext,
    ) -> Result<()> {
        Ok(())
    }
}

/// Wrap a closure as a [`Mapper`].
pub struct ClosureMapper<IK, IV, OK, OV, F> {
    f: F,
    #[allow(clippy::type_complexity)]
    _t: PhantomData<fn(IK, IV) -> (OK, OV)>,
}

impl<IK, IV, OK, OV, F: Clone> Clone for ClosureMapper<IK, IV, OK, OV, F> {
    fn clone(&self) -> Self {
        ClosureMapper {
            f: self.f.clone(),
            _t: PhantomData,
        }
    }
}

impl<IK, IV, OK, OV, F> ClosureMapper<IK, IV, OK, OV, F>
where
    F: FnMut(&IK, &IV, &mut dyn Emit<OK, OV>, &TaskContext) -> Result<()>,
{
    /// Build a mapper from the given closure.
    pub fn new(f: F) -> Self {
        ClosureMapper { f, _t: PhantomData }
    }
}

impl<IK, IV, OK, OV, F> Mapper for ClosureMapper<IK, IV, OK, OV, F>
where
    IK: Value,
    IV: Value,
    OK: Key,
    OV: Value,
    F: FnMut(&IK, &IV, &mut dyn Emit<OK, OV>, &TaskContext) -> Result<()> + Clone + Send + 'static,
{
    type InKey = IK;
    type InValue = IV;
    type OutKey = OK;
    type OutValue = OV;

    fn map(
        &mut self,
        key: &IK,
        value: &IV,
        out: &mut dyn Emit<OK, OV>,
        ctx: &TaskContext,
    ) -> Result<()> {
        (self.f)(key, value, out, ctx)
    }
}

/// The identity mapper: passes `(k, v)` through unchanged. Used by sort jobs
/// such as the second phase of BTO and BRJ.
pub struct IdentityMapper<K, V> {
    _t: PhantomData<fn(K, V)>,
}

impl<K, V> IdentityMapper<K, V> {
    /// Construct the identity mapper.
    pub fn new() -> Self {
        IdentityMapper { _t: PhantomData }
    }
}

impl<K, V> Default for IdentityMapper<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K, V> Clone for IdentityMapper<K, V> {
    fn clone(&self) -> Self {
        Self::new()
    }
}

impl<K: Key, V: Value> Mapper for IdentityMapper<K, V> {
    type InKey = K;
    type InValue = V;
    type OutKey = K;
    type OutValue = V;

    fn map(
        &mut self,
        key: &K,
        value: &V,
        out: &mut dyn Emit<K, V>,
        _ctx: &TaskContext,
    ) -> Result<()> {
        out.emit(key.clone(), value.clone())
    }
}

/// A mapper that swaps key and value — the map phase of BTO's sort job,
/// which routes `(token, count)` pairs as `(count, token)` so the framework
/// sorts tokens by frequency.
pub struct SwapMapper<K, V> {
    _t: PhantomData<fn(K, V)>,
}

impl<K, V> SwapMapper<K, V> {
    /// Construct the swapping mapper.
    pub fn new() -> Self {
        SwapMapper { _t: PhantomData }
    }
}

impl<K, V> Default for SwapMapper<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K, V> Clone for SwapMapper<K, V> {
    fn clone(&self) -> Self {
        Self::new()
    }
}

impl<K: Value, V: Key> Mapper for SwapMapper<K, V> {
    type InKey = K;
    type InValue = V;
    type OutKey = V;
    type OutValue = K;

    fn map(
        &mut self,
        key: &K,
        value: &V,
        out: &mut dyn Emit<V, K>,
        _ctx: &TaskContext,
    ) -> Result<()> {
        out.emit(value.clone(), key.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::Cache;
    use crate::counters::Counters;
    use crate::dfs::Dfs;
    use crate::memory::MemoryGauge;
    use crate::task::{Phase, VecEmitter};

    fn ctx() -> TaskContext {
        TaskContext::new(
            Phase::Map,
            0,
            0,
            1,
            Counters::new(),
            MemoryGauge::unlimited("t"),
            Cache::new(),
            Dfs::new(1, 64),
        )
    }

    #[test]
    fn closure_mapper_maps() {
        let mut m = ClosureMapper::new(
            |k: &u64, v: &String, out: &mut dyn Emit<String, u64>, _ctx: &TaskContext| {
                out.emit(v.clone(), *k)
            },
        );
        let mut out = VecEmitter::new();
        m.map(&7, &"x".to_string(), &mut out, &ctx()).unwrap();
        assert_eq!(out.pairs, vec![("x".to_string(), 7)]);
    }

    #[test]
    fn identity_mapper_passes_through() {
        let mut m = IdentityMapper::<u32, String>::new();
        let mut out = VecEmitter::new();
        m.map(&1, &"v".to_string(), &mut out, &ctx()).unwrap();
        assert_eq!(out.pairs, vec![(1, "v".to_string())]);
    }

    #[test]
    fn swap_mapper_swaps() {
        let mut m = SwapMapper::<String, u64>::new();
        let mut out = VecEmitter::new();
        m.map(&"token".to_string(), &3, &mut out, &ctx()).unwrap();
        assert_eq!(out.pairs, vec![(3, "token".to_string())]);
    }
}
