//! The job executor: map phase, spill/combine, shuffle, merge, reduce phase,
//! and the cluster time model.

use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use parking_lot::Mutex;

use crate::backend::{
    BackendKind, ExecOutcome, ExecParams, ExecutionBackend, ProcessBackend, ShardedBackend,
    SimulatedBackend,
};
use crate::cache::Cache;
use crate::cluster::{
    list_schedule_makespan, list_schedule_speculative, schedule_map_tasks, ClusterConfig,
    MapTaskSpec, SpecOutcome, SpecTask,
};
use crate::counters::Counters;
use crate::dfs::{Dfs, SeqWriter, TextWriter};
use crate::error::{MrError, Result};
use crate::faults::{Fault, FaultPlan};
use crate::input::SplitSource;
use crate::job::{Job, KeyLabel, Output, TextFormat};
use crate::kv::{Key, Value};
use crate::manifest::{JobManifest, SUCCESS_FILE};
use crate::mapper::Mapper;
use crate::memory::MemoryGauge;
use crate::metrics::{JobMetrics, PhaseMetrics};
use crate::partitioner::{GroupEq, PartitionFn, SortCmp};
use crate::profile::{self, secs_to_us, JobProfile};
use crate::reducer::{CombineFn, Reducer};
use crate::run::{merge_to_factor, sort_and_combine, GroupValues, MergeStream, Run};
use crate::task::{Emit, Phase, TaskContext};
use crate::trace::{
    EventKind, Histogram, HistogramSnapshot, Histograms, Outcome, TopK, TraceEvent, TraceSink,
    HEAVY_HITTER_WARNINGS, HIST_MAP_TASK_SECS, HIST_REDUCE_GROUP_RECORDS, HIST_REDUCE_TASK_SECS,
};

/// A simulated shared-nothing cluster: a topology plus a DFS.
///
/// `Cluster::run` executes a [`Job`] to completion and returns its
/// [`JobMetrics`], including the simulated time the job would take on the
/// configured topology (see [`crate::cluster`] for the model).
pub struct Cluster {
    config: ClusterConfig,
    dfs: Dfs,
    trace: Option<TraceSink>,
    /// Jobs started on this cluster, in driver order. Indexes the
    /// driver-crash points in [`FaultPlan`] (`crash_after`/`crash_mid`),
    /// so "crash after job 2" means the third `run` call on this engine.
    jobs_run: AtomicUsize,
}

impl Cluster {
    /// Create a cluster with a fresh DFS using the given block size.
    ///
    /// An explicit `config.dfs_root` puts the store on disk for *any*
    /// backend — that is what lets crash-torture harnesses SIGKILL a
    /// simulated or sharded driver and resume over the surviving files. The
    /// process backend additionally needs a DFS its worker processes can
    /// see, so without a root it still gets a self-cleaning temp directory.
    pub fn new(config: ClusterConfig, dfs_block_size: usize) -> Result<Self> {
        config.validate().map_err(MrError::InvalidConfig)?;
        let dfs = match (&config.backend, &config.dfs_root) {
            (_, Some(root)) => Dfs::new_disk(config.nodes, dfs_block_size, root)?,
            (BackendKind::Process, None) => Dfs::new_temp_disk(config.nodes, dfs_block_size)?,
            _ => Dfs::new(config.nodes, dfs_block_size),
        };
        Self::with_dfs(config, dfs)
    }

    /// Create a cluster around an existing DFS (e.g. to re-run with a
    /// different topology over the same data, or to resume a crashed
    /// pipeline in a fresh engine). The config's storage policy is applied
    /// to the handle: durable-commit discipline and, when the fault plan
    /// carries storage keys, driver-side disk fault injection.
    pub fn with_dfs(config: ClusterConfig, mut dfs: Dfs) -> Result<Self> {
        config.validate().map_err(MrError::InvalidConfig)?;
        dfs.set_durable(config.durable_commits);
        if let Some(plan) = &config.faults {
            dfs.install_storage_faults(plan);
        }
        Ok(Cluster {
            config,
            dfs,
            trace: None,
            jobs_run: AtomicUsize::new(0),
        })
    }

    /// The cluster's DFS handle.
    pub fn dfs(&self) -> &Dfs {
        &self.dfs
    }

    /// The cluster topology.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Attach a trace sink; every subsequent job records span events per
    /// `(job, phase, task, attempt)` into it. Events are emitted outside
    /// the timed window of each attempt, so tracing is never charged to
    /// simulated time and task outputs are unaffected.
    pub fn set_trace(&mut self, sink: TraceSink) {
        self.trace = Some(sink);
    }

    /// The attached trace sink, if any.
    pub fn trace(&self) -> Option<&TraceSink> {
        self.trace.as_ref()
    }

    fn gauge(&self, label: String) -> MemoryGauge {
        match self.config.task_memory {
            Some(b) => MemoryGauge::new(label, b),
            None => MemoryGauge::unlimited(label),
        }
    }

    /// Execute a job.
    pub fn run<M, R>(&self, job: Job<M, R>) -> Result<JobMetrics>
    where
        M: Mapper,
        R: Reducer<Key = M::OutKey, InValue = M::OutValue>,
    {
        let wall_start = Instant::now();
        let num_reducers = job
            .num_reducers
            .unwrap_or_else(|| self.config.default_reducers());
        if num_reducers == 0 {
            return Err(MrError::InvalidConfig(format!(
                "job {}: need at least one reducer",
                job.name
            )));
        }
        let counters = Counters::new();
        let histograms = Histograms::new();
        if let Some(t) = &self.trace {
            t.emit(TraceEvent::new(EventKind::JobStart, &job.name));
        }
        let job_seq = self.jobs_run.fetch_add(1, Ordering::Relaxed);

        // ---- recovery: scavenge orphans from a crashed prior run -----------
        // A driver crash can leave `_attempt-*` files (uncommitted task
        // output) and a stale `_SUCCESS` manifest in the output directory.
        // Both are deleted before any task of this run starts, so a stale
        // attempt file can never be renamed over fresh output and a stale
        // manifest can never vouch for output this run is about to replace.
        // Killed or quarantined process workers additionally leak `*.run`
        // spill files (and driver temps) on the disk store; the DFS-level
        // scavenger sweeps everything owned by dead pids.
        if let Some(dir) = job.output.dir() {
            let mut scavenged = 0u64;
            for path in self.dfs.list(dir) {
                let base = path.rsplit('/').next().unwrap_or("");
                if base.starts_with("_attempt-") {
                    if self.dfs.delete(&path).is_ok() {
                        scavenged += 1;
                    }
                } else if base == SUCCESS_FILE {
                    let _ = self.dfs.delete(&path);
                }
            }
            scavenged += self.dfs.scavenge_orphans() as u64;
            if scavenged > 0 {
                counters.get("mr.recovery.scavenged").add(scavenged);
                if let Some(t) = &self.trace {
                    let mut e = TraceEvent::new(EventKind::Scavenge, &job.name);
                    e.records = Some(scavenged);
                    e.detail = Some(format!("orphaned attempt/spill file(s) under {dir}"));
                    t.emit(e);
                }
            }
        }

        // ---- map, shuffle, reduce: delegated to the execution backend -----
        let map_items: Vec<MapItem<M>> = job
            .inputs
            .into_iter()
            .enumerate()
            .map(|(task_id, split)| MapItem {
                task_id,
                split,
                mapper: job.mapper.clone(),
            })
            .collect();
        let num_map_tasks = map_items.len();
        let shared = MapShared {
            partitioner: &job.partitioner,
            sort_cmp: &job.sort_cmp,
            combiner: job.combiner.as_ref(),
            counters: &counters,
            histograms: &histograms,
            cache: &job.cache,
            dfs: &self.dfs,
            cluster: self,
            num_reducers,
            job_name: &job.name,
        };
        let rshared = ReduceShared {
            sort_cmp: &job.sort_cmp,
            group_eq: &job.group_eq,
            counters: &counters,
            histograms: &histograms,
            cache: &job.cache,
            dfs: &self.dfs,
            cluster: self,
            num_reducers,
            output: &job.output,
            job_name: &job.name,
            key_label: job.key_label.as_ref(),
        };
        let params = ExecParams {
            map_items,
            map_shared: &shared,
            reduce_shared: &rshared,
            reducer: job.reducer.clone(),
            policy: RetryPolicy::from_config(&self.config),
            threads: self.config.physical_threads(),
            num_reducers,
            config: &self.config,
            remote: job.remote.as_ref(),
        };
        counters
            .get(profile::WALL_SETUP_US)
            .add(secs_to_us(wall_start.elapsed().as_secs_f64()));
        // A backend `Err` is a map-phase failure: propagate it without
        // touching the output directory, exactly like the pre-backend
        // engine did.
        let outcome = match self.config.backend {
            BackendKind::Simulated => SimulatedBackend.execute(params),
            BackendKind::Sharded => ShardedBackend.execute(params),
            BackendKind::Process => ProcessBackend.execute(params),
        }?;
        let ExecOutcome {
            mut map_outs,
            map_stats,
            shuffle_bytes,
            shuffle_records,
            spills,
            reduce_result,
        } = outcome;
        map_outs.sort_by_key(|o| o.task_id);
        let commit_start = Instant::now();
        let faults = self.config.faults.as_ref();
        // Injected driver crash *mid-job*: all reduce tasks committed their
        // parts at task level, but the job-level commit (attempt sweep +
        // `_SUCCESS` manifest) never ran. The output directory is left
        // exactly as the crash would leave it — parts present, no manifest —
        // so resume logic must treat the job as uncommitted.
        if reduce_result.is_ok() {
            if let Some(plan) = faults {
                if plan.crash_mid == Some(job_seq) {
                    return Err(MrError::DriverCrash(format!(
                        "mid job {job_seq} ({}) before commit",
                        job.name
                    )));
                }
            }
        }
        // Job-level commit/abort (Hadoop's OutputCommitter.commitJob /
        // abortJob): on success sweep any leftover attempt files and write
        // the `_SUCCESS` commit manifest; on failure remove the whole output
        // directory so a failed job never leaves partial output behind.
        if let Some(dir) = job.output.dir() {
            match &reduce_result {
                Ok(_) => {
                    for path in self.dfs.list(dir) {
                        if path
                            .rsplit('/')
                            .next()
                            .is_some_and(|base| base.starts_with("_attempt-"))
                        {
                            let _ = self.dfs.delete(&path);
                        }
                    }
                    // The commit itself can hit a transient storage fault
                    // (injected EIO on the manifest write, ENOSPC freed by
                    // the scavenger): re-issue it a bounded number of times
                    // rather than failing a job whose parts all committed.
                    commit_with_retries(|| {
                        JobManifest::collect(
                            &self.dfs,
                            &job.name,
                            job.fingerprint.unwrap_or(0),
                            dir,
                        )?
                        .write(&self.dfs, dir)
                    })?;
                    // Injected post-commit corruption: flip a bit in a
                    // committed part so the next read (or manifest check)
                    // of this directory must detect it.
                    if let Some(target) = faults.and_then(|p| p.corrupt_path.as_deref()) {
                        if target.starts_with(dir) && self.dfs.exists(target) {
                            self.dfs.corrupt(target)?;
                        }
                    }
                }
                Err(_) => {
                    self.dfs.delete_prefix(dir);
                }
            }
        }
        // Injected driver crash *after* this job committed: downstream jobs
        // never start. Resume must skip this job (manifest valid) and re-run
        // only what is missing.
        if reduce_result.is_ok() {
            if let Some(plan) = faults {
                if plan.crash_after == Some(job_seq) {
                    return Err(MrError::DriverCrash(format!(
                        "after job {job_seq} ({}) committed",
                        job.name
                    )));
                }
            }
        }
        let (mut reduce_outs, reduce_stats) = reduce_result?;
        reduce_outs.sort_by_key(|o| o.task_id);
        counters
            .get(profile::WALL_COMMIT_US)
            .add(secs_to_us(commit_start.elapsed().as_secs_f64()));
        let finalize_start = Instant::now();

        // ---- metrics --------------------------------------------------------
        let overhead = self.config.network.task_overhead_secs;
        let map_specs: Vec<MapTaskSpec> = map_outs
            .iter()
            .map(|o| MapTaskSpec {
                duration: o.duration + overhead,
                node_hint: o.node_hint.map(|n| n % self.config.nodes),
                input_bytes: o.input_bytes,
            })
            .collect();
        let map_schedule = schedule_map_tasks(
            &map_specs,
            self.config.nodes,
            self.config.map_slots_per_node,
            &self.config.network,
        );
        // Speculative execution: when any attempt ran slower than its
        // healthy expectation (duration > base_duration, i.e. an injected
        // straggler), re-schedule the phase with backup attempts racing the
        // stragglers. Without stragglers this is bit-identical to the plain
        // schedule, so the fault-free time model is unchanged.
        let map_straggles = map_outs.iter().any(|o| o.duration > o.base_duration);
        let (map_makespan, map_spec) = if self.config.speculation && map_straggles {
            let tasks: Vec<SpecTask> = map_schedule
                .task_costs
                .iter()
                .zip(&map_outs)
                .map(|(&cost, o)| SpecTask {
                    duration: cost,
                    expected: (cost - (o.duration - o.base_duration)).max(0.0),
                })
                .collect();
            let s = list_schedule_speculative(&tasks, self.config.map_slots());
            (s.makespan, s)
        } else {
            (map_schedule.makespan, SpecOutcome::default())
        };
        let reduce_sim: Vec<f64> = reduce_outs
            .iter()
            .map(|o| self.config.network.transfer_secs(o.input_bytes) + o.duration + overhead)
            .collect();
        let reduce_straggles = reduce_outs.iter().any(|o| o.duration > o.base_duration);
        let (reduce_makespan, reduce_spec) = if self.config.speculation && reduce_straggles {
            let tasks: Vec<SpecTask> = reduce_sim
                .iter()
                .zip(&reduce_outs)
                .map(|(&sim, o)| SpecTask {
                    duration: sim,
                    expected: (sim - (o.duration - o.base_duration)).max(0.0),
                })
                .collect();
            let s = list_schedule_speculative(&tasks, self.config.reduce_slots());
            (s.makespan, s)
        } else {
            (
                list_schedule_makespan(&reduce_sim, self.config.reduce_slots()),
                SpecOutcome::default(),
            )
        };

        // ---- histograms & heavy hitters ------------------------------------
        // Built from winning-attempt outputs only, so the distributions are
        // deterministic even when fault injection retries attempts.
        let map_secs = Histogram::new();
        for o in &map_outs {
            map_secs.record(o.duration);
        }
        let reduce_secs = Histogram::new();
        let mut group_records = HistogramSnapshot::default();
        let mut key_counts: Option<TopK> = None;
        for o in &reduce_outs {
            reduce_secs.record(o.duration);
            group_records.merge(&o.group_records);
            if let Some(tk) = &o.key_counts {
                key_counts
                    .get_or_insert_with(|| TopK::new(heavy_hitter_capacity(&self.config)))
                    .merge(tk);
            }
        }
        let mut job_histograms = histograms.snapshot();
        job_histograms.push((HIST_MAP_TASK_SECS.to_string(), map_secs.snapshot()));
        job_histograms.push((HIST_REDUCE_TASK_SECS.to_string(), reduce_secs.snapshot()));
        job_histograms.push((HIST_REDUCE_GROUP_RECORDS.to_string(), group_records));
        job_histograms.sort_by(|a, b| a.0.cmp(&b.0));
        let heavy_hitters = key_counts
            .map(|tk| tk.top(self.config.heavy_hitter_top_k))
            .unwrap_or_default();
        if let Some((label, count)) = heavy_hitters.first() {
            let share = *count as f64 / shuffle_records.max(1) as f64;
            if shuffle_records > 0 && share > self.config.heavy_hitter_warn_share {
                counters.get(HEAVY_HITTER_WARNINGS).incr();
                eprintln!(
                    "warning: job {}: reduce key {label} carries {count} of {shuffle_records} \
                     shuffle records ({:.0}% > {:.0}% threshold) — a different token ordering \
                     or grouped routing would balance reducers better",
                    job.name,
                    share * 100.0,
                    self.config.heavy_hitter_warn_share * 100.0,
                );
                if let Some(t) = &self.trace {
                    let mut e = TraceEvent::new(EventKind::SkewWarning, &job.name);
                    e.records = Some(*count);
                    e.detail = Some(format!(
                        "{label} carries {:.1}% of {shuffle_records} shuffle records",
                        share * 100.0
                    ));
                    t.emit(e);
                }
            }
        }
        // Speculative races live on the simulated timeline; export them as
        // synthetic spans in a dedicated trace process.
        if let Some(t) = &self.trace {
            for (phase, spec) in [(Phase::Map, &map_spec), (Phase::Reduce, &reduce_spec)] {
                for race in &spec.races {
                    let mut e = TraceEvent::new(EventKind::Speculative, &job.name);
                    e.phase = Some(phase);
                    e.task = Some(race.task as u64);
                    e.dur_us = Some((race.backup_duration * 1e6) as u64);
                    e.detail = Some(if race.backup_won {
                        format!("backup won; primary needed {:.3}s", race.primary_duration)
                    } else {
                        format!(
                            "backup killed; primary won in {:.3}s",
                            race.primary_duration
                        )
                    });
                    t.emit_at(e, (race.backup_start * 1e6) as u64);
                }
            }
        }

        // Per-shard task counts (winning attempts), keyed by the
        // deterministic node label — identical across backends, and the
        // observability hook later PRs need to adapt partitioning.
        let mut map_tasks_per_node = vec![0u64; self.config.nodes];
        for o in &map_outs {
            map_tasks_per_node[o.node % self.config.nodes] += 1;
        }
        let mut reduce_tasks_per_node = vec![0u64; self.config.nodes];
        for o in &reduce_outs {
            reduce_tasks_per_node[o.node % self.config.nodes] += 1;
        }

        counters
            .get(profile::WALL_FINALIZE_US)
            .add(secs_to_us(finalize_start.elapsed().as_secs_f64()));
        let metrics = JobMetrics {
            name: job.name,
            map: PhaseMetrics {
                tasks: num_map_tasks,
                total_task_secs: map_outs.iter().map(|o| o.duration).sum(),
                max_task_secs: map_outs.iter().map(|o| o.duration).fold(0.0, f64::max),
                makespan_secs: map_makespan,
            },
            reduce: PhaseMetrics {
                tasks: num_reducers,
                total_task_secs: reduce_outs.iter().map(|o| o.duration).sum(),
                max_task_secs: reduce_outs.iter().map(|o| o.duration).fold(0.0, f64::max),
                makespan_secs: reduce_makespan,
            },
            map_local_tasks: map_schedule.local_tasks,
            map_remote_tasks: map_schedule.remote_tasks,
            map_tasks_per_node,
            reduce_tasks_per_node,
            task_retries: map_stats.retries + reduce_stats.retries,
            backoff_secs: map_stats.backoff_secs + reduce_stats.backoff_secs,
            speculative_launched: map_spec.launched + reduce_spec.launched,
            speculative_won: map_spec.won + reduce_spec.won,
            speculative_killed: map_spec.killed + reduce_spec.killed,
            output_commits: counters.value("mr.output.commits"),
            output_aborts: counters.value("mr.output.aborts"),
            scavenged_attempt_files: counters.value("mr.recovery.scavenged"),
            merge_passes: reduce_outs.iter().map(|o| o.merge_passes).sum(),
            map_input_records: map_outs.iter().map(|o| o.input_records).sum(),
            map_output_records: map_outs.iter().map(|o| o.output_records).sum(),
            combine_input_records: map_outs.iter().map(|o| o.combine_in).sum(),
            combine_output_records: map_outs.iter().map(|o| o.combine_out).sum(),
            shuffle_bytes,
            shuffle_records,
            spills,
            reduce_input_groups: reduce_outs.iter().map(|o| o.groups).sum(),
            reduce_input_records: reduce_outs.iter().map(|o| o.input_records).sum(),
            reduce_output_records: reduce_outs.iter().map(|o| o.output_records).sum(),
            shuffle_transfer_secs: reduce_outs
                .iter()
                .map(|o| self.config.network.transfer_secs(o.input_bytes))
                .fold(0.0, f64::max),
            sim_secs: map_makespan + reduce_makespan,
            wall_secs: wall_start.elapsed().as_secs_f64(),
            counters: counters.snapshot(),
            histograms: job_histograms,
            reduce_key_heavy_hitters: heavy_hitters,
        };
        if let Some(t) = &self.trace {
            let mut e = TraceEvent::new(EventKind::JobEnd, &metrics.name);
            e.dur_us = Some((metrics.wall_secs * 1e6) as u64);
            e.bytes = Some(shuffle_bytes);
            e.records = Some(shuffle_records);
            e.detail = Some(format!("sim {:.3}s", metrics.sim_secs));
            t.emit(e);
        }
        if self.config.profile {
            if let Some(t) = &self.trace {
                let prof = JobProfile::from_metrics(&metrics);
                let mut e = TraceEvent::new(EventKind::Profile, &metrics.name);
                e.dur_us = Some((prof.covered_secs() * 1e6) as u64);
                e.bytes = Some(prof.busy_shuffle_transport_bytes);
                e.detail = Some(prof.to_json(metrics.wall_secs).to_string());
                t.emit(e);
            }
        }
        Ok(metrics)
    }
}

/// Sketch capacity for per-task heavy-hitter tracking: generously above
/// the reported top-k so near-ties survive task-level merging.
fn heavy_hitter_capacity(config: &ClusterConfig) -> usize {
    (config.heavy_hitter_top_k * 8).max(64)
}

// ---- generic task pool ----------------------------------------------------

/// Retry behaviour shared by every task of a job: the attempt cap and the
/// simulated exponential backoff between attempts.
#[derive(Clone, Copy)]
pub(crate) struct RetryPolicy {
    max_attempts: usize,
    backoff_secs: f64,
    backoff_cap_secs: f64,
}

impl RetryPolicy {
    pub(crate) fn from_config(config: &ClusterConfig) -> Self {
        RetryPolicy {
            max_attempts: config.max_task_attempts,
            backoff_secs: config.retry_backoff_secs,
            backoff_cap_secs: config.retry_backoff_cap_secs,
        }
    }

    /// Simulated seconds to wait after `failed_attempt` (0-based) fails:
    /// capped exponential, `min(cap, base * 2^attempt)`.
    fn backoff_after(&self, failed_attempt: usize) -> f64 {
        if self.backoff_secs <= 0.0 {
            return 0.0;
        }
        let factor = 2f64.powi(failed_attempt.min(62) as i32);
        (self.backoff_secs * factor).min(self.backoff_cap_secs)
    }
}

/// Accumulated retry accounting for one phase.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct RetryStats {
    pub(crate) retries: u64,
    pub(crate) backoff_secs: f64,
}

/// Task outputs that can absorb simulated time penalties (retry backoff).
pub(crate) trait SimCharge {
    /// Add `secs` of simulated delay to this task's completion time.
    fn charge_sim(&mut self, secs: f64);
}

/// Render a caught panic payload as a message (`&str` and `String`
/// payloads are preserved, anything else is opaque).
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Simulated backoff (µs) that will follow this failed attempt, when the
/// error is transient and attempts remain — recorded on failed `TaskEnd`
/// events so a trace shows why the next attempt starts late in sim time.
fn pending_backoff_us(config: &ClusterConfig, transient: bool, attempt: usize) -> Option<u64> {
    if !transient || attempt + 1 >= config.max_task_attempts.max(1) {
        return None;
    }
    let secs = RetryPolicy::from_config(config).backoff_after(attempt);
    (secs > 0.0).then_some((secs * 1e6) as u64)
}

/// Run one attempt body bracketed by trace events: a `TaskStart` before it
/// and exactly one `TaskEnd` after it — whether the body returns, errors,
/// or panics (panics are re-raised for the retry loop to classify). All
/// emission happens outside the attempt's own timed window, so tracing is
/// never charged to simulated time. With no sink attached this is exactly
/// the body.
#[allow(clippy::too_many_arguments)]
fn traced_attempt<O>(
    cluster: &Cluster,
    job: &str,
    phase: Phase,
    task_id: usize,
    attempt: usize,
    node: usize,
    stats: impl Fn(&O) -> (u64, u64),
    body: impl FnOnce() -> Result<O>,
) -> Result<O> {
    let Some(trace) = &cluster.trace else {
        return body();
    };
    // Re-derive the injected fault for labeling: `FaultPlan::decide` is
    // pure in (job, phase, task, attempt), so this matches what the body
    // will draw.
    let fault = cluster.config.faults.as_ref().and_then(|plan| {
        if plan.node_is_dead(node) {
            Some("dead_node".to_string())
        } else {
            plan.decide(job, phase, task_id, attempt)
                .map(|f| format!("{f:?}").to_lowercase())
        }
    });
    let mut start =
        TraceEvent::new(EventKind::TaskStart, job).at_task(phase, task_id, attempt, node);
    start.fault = fault.clone();
    trace.emit(start);
    let t0 = Instant::now();
    let result = std::panic::catch_unwind(AssertUnwindSafe(body));
    let wall_us = (t0.elapsed().as_micros() as u64).max(1);
    let mut end = TraceEvent::new(EventKind::TaskEnd, job).at_task(phase, task_id, attempt, node);
    end.dur_us = Some(wall_us);
    end.fault = fault;
    match result {
        Ok(Ok(out)) => {
            end.outcome = Some(Outcome::Ok);
            let (bytes, records) = stats(&out);
            end.bytes = Some(bytes);
            end.records = Some(records);
            trace.emit(end);
            Ok(out)
        }
        Ok(Err(e)) => {
            end.outcome = Some(Outcome::Failed);
            end.error = Some(e.to_string());
            end.backoff_us = pending_backoff_us(&cluster.config, e.is_transient(), attempt);
            trace.emit(end);
            Err(e)
        }
        Err(payload) => {
            end.outcome = Some(Outcome::Panicked);
            end.error = Some(panic_message(payload.as_ref()));
            // Panics classify as transient, so a retry follows whenever
            // attempts remain.
            end.backoff_us = pending_backoff_us(&cluster.config, true, attempt);
            trace.emit(end);
            std::panic::resume_unwind(payload)
        }
    }
}

/// Run one task with retries (Hadoop's task attempts). Each attempt runs
/// under `catch_unwind`, so a panicking user function becomes a
/// [`MrError::TaskPanicked`] attempt failure rather than aborting the
/// process. Failed attempts are re-executed only when the error is
/// transient ([`MrError::is_transient`]); permanent errors fail
/// immediately. Every retry charges capped exponential backoff to the
/// winning attempt's *simulated* time.
pub(crate) fn run_with_retries<I, O: SimCharge>(
    item: &I,
    policy: &RetryPolicy,
    f: &(impl Fn(&I, usize) -> Result<O> + Sync),
) -> Result<(O, RetryStats)> {
    let max_attempts = policy.max_attempts.max(1);
    let mut stats = RetryStats::default();
    for attempt in 0..max_attempts {
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| f(item, attempt)))
            .unwrap_or_else(|payload| Err(MrError::TaskPanicked(panic_message(payload.as_ref()))));
        match result {
            Ok(mut out) => {
                out.charge_sim(stats.backoff_secs);
                stats.retries = attempt as u64;
                return Ok((out, stats));
            }
            Err(e) => {
                if !e.is_transient() || attempt + 1 == max_attempts {
                    return Err(e);
                }
                stats.backoff_secs += policy.backoff_after(attempt);
            }
        }
    }
    unreachable!("retry loop always returns")
}

/// Re-issue the job-level commit (manifest collect + write) on transient
/// storage faults. The commit is idempotent — `JobManifest::write` replaces
/// any half-written `_SUCCESS` — so a bounded retry is safe. Permanent
/// errors (a corrupt part failing its CRC during collect) propagate
/// immediately.
fn commit_with_retries(mut f: impl FnMut() -> Result<()>) -> Result<()> {
    const MAX_COMMIT_ATTEMPTS: usize = 8;
    let mut attempt = 0;
    loop {
        match f() {
            Ok(()) => return Ok(()),
            Err(e) => {
                attempt += 1;
                if !e.is_transient() || attempt >= MAX_COMMIT_ATTEMPTS {
                    return Err(e);
                }
            }
        }
    }
}

/// Run `items` through `f` on up to `threads` worker threads with per-task
/// retries, failing fast on the first exhausted task. Returns the outputs
/// and the accumulated retry statistics.
pub(crate) fn run_tasks<I, O, F>(
    items: Vec<I>,
    threads: usize,
    policy: RetryPolicy,
    f: F,
) -> Result<(Vec<O>, RetryStats)>
where
    I: Send,
    O: Send + SimCharge,
    F: Fn(&I, usize) -> Result<O> + Sync,
{
    if items.is_empty() {
        return Ok((Vec::new(), RetryStats::default()));
    }
    let workers = threads.clamp(1, items.len());
    if workers == 1 {
        let mut outs = Vec::with_capacity(items.len());
        let mut stats = RetryStats::default();
        for item in &items {
            let (out, s) = run_with_retries(item, &policy, &f)?;
            outs.push(out);
            stats.retries += s.retries;
            stats.backoff_secs += s.backoff_secs;
        }
        return Ok((outs, stats));
    }
    let queue: Mutex<Vec<I>> = Mutex::new(items.into_iter().rev().collect());
    let results: Mutex<Vec<O>> = Mutex::new(Vec::new());
    let stats: Mutex<RetryStats> = Mutex::new(RetryStats::default());
    let error: Mutex<Option<MrError>> = Mutex::new(None);
    crossbeam::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|_| loop {
                if error.lock().is_some() {
                    return;
                }
                let item = queue.lock().pop();
                let Some(item) = item else { return };
                match run_with_retries(&item, &policy, &f) {
                    Ok((out, s)) => {
                        let mut stats = stats.lock();
                        stats.retries += s.retries;
                        stats.backoff_secs += s.backoff_secs;
                        results.lock().push(out);
                    }
                    Err(e) => {
                        error.lock().get_or_insert(e);
                        return;
                    }
                }
            });
        }
    })
    .expect("worker panicked");
    if let Some(e) = error.into_inner() {
        return Err(e);
    }
    Ok((results.into_inner(), stats.into_inner()))
}

/// The fault-injection hook shared by map and reduce attempts: checks the
/// dead node, then draws this attempt's fault. `Transient`, `Panic`, and
/// `Oom` fire immediately; `Straggle` and `LateFail` are returned for the
/// task body to apply.
fn inject_start_faults(
    faults: Option<&FaultPlan>,
    job: &str,
    phase: Phase,
    task_id: usize,
    attempt: usize,
    node: usize,
    label: &str,
) -> Result<Option<Fault>> {
    let Some(plan) = faults else { return Ok(None) };
    if plan.node_is_dead(node) {
        return Err(MrError::NodeLost {
            node,
            task: label.to_string(),
        });
    }
    let fault = plan.decide(job, phase, task_id, attempt);
    match fault {
        Some(Fault::Transient) => Err(MrError::TaskFailed(format!(
            "injected transient fault ({label} attempt {attempt})"
        ))),
        Some(Fault::Panic) => panic!("injected user-code panic ({label} attempt {attempt})"),
        Some(Fault::Oom) => Err(MrError::OutOfMemory {
            task: label.to_string(),
            requested: 0,
            budget: 0,
            transient: true,
        }),
        // In a worker process the serve loop already acted on these two
        // *before* dispatch (a real sleep / suppressed heartbeats); here
        // they fall through so the body is not faulted twice. In-process
        // executors have no wall clock to hang on, so a hang degrades to
        // an immediate transient loss — same retry decision the process
        // backend's supervisor reaches, without the wait.
        Some(Fault::Hang) if std::env::var_os(crate::remote::WORKER_ENV).is_none() => {
            Err(MrError::NodeLost {
                node,
                task: label.to_string(),
            })
        }
        Some(Fault::Hang) | Some(Fault::SlowHeartbeat) => Ok(None),
        other => Ok(other),
    }
}

// ---- map side ---------------------------------------------------------------

pub(crate) struct MapItem<M: Mapper> {
    pub(crate) task_id: usize,
    pub(crate) split: SplitSource<M::InKey, M::InValue>,
    pub(crate) mapper: M,
}

pub(crate) struct MapShared<'a, M: Mapper> {
    pub(crate) partitioner: &'a PartitionFn<M::OutKey>,
    pub(crate) sort_cmp: &'a SortCmp<M::OutKey>,
    pub(crate) combiner: Option<&'a CombineFn<M::OutKey, M::OutValue>>,
    pub(crate) counters: &'a Counters,
    pub(crate) histograms: &'a Histograms,
    pub(crate) cache: &'a Cache,
    pub(crate) dfs: &'a Dfs,
    pub(crate) cluster: &'a Cluster,
    pub(crate) num_reducers: usize,
    pub(crate) job_name: &'a str,
}

pub(crate) struct MapTaskOut {
    pub(crate) task_id: usize,
    /// Simulated task seconds: measured execution, inflated by injected
    /// slow-downs and charged retry backoff.
    pub(crate) duration: f64,
    /// What a healthy attempt would have taken (speculation baseline).
    pub(crate) base_duration: f64,
    pub(crate) node_hint: Option<usize>,
    /// Node label of the winning attempt (per-shard load accounting).
    pub(crate) node: usize,
    pub(crate) input_bytes: u64,
    pub(crate) input_records: u64,
    pub(crate) output_records: u64,
    pub(crate) spills: u64,
    pub(crate) combine_in: u64,
    pub(crate) combine_out: u64,
    /// Spill runs per partition.
    pub(crate) runs: Vec<Vec<Run>>,
}

impl SimCharge for MapTaskOut {
    fn charge_sim(&mut self, secs: f64) {
        // Backoff delays both the actual and the expected completion time,
        // so it never triggers speculation by itself.
        self.duration += secs;
        self.base_duration += secs;
    }
}

/// Map-side output collector with spill-and-combine behaviour.
struct MapEmitter<'a, K: Key, V: Value> {
    parts: Vec<Vec<(K, V)>>,
    buffered_bytes: usize,
    threshold: usize,
    partitioner: &'a PartitionFn<K>,
    sort_cmp: &'a SortCmp<K>,
    combiner: Option<&'a CombineFn<K, V>>,
    runs: Vec<Vec<Run>>,
    output_records: u64,
    spills: u64,
    combine_in: u64,
    combine_out: u64,
    /// Seconds spent in `spill()` (sort + combine + encode), for the
    /// per-phase profile; subtracted from the attempt's elapsed time to
    /// isolate user map execution.
    spill_secs: f64,
    /// Encoded bytes produced by `spill()`.
    spill_bytes: u64,
}

impl<'a, K: Key, V: Value> MapEmitter<'a, K, V> {
    fn new(
        num_partitions: usize,
        threshold: usize,
        partitioner: &'a PartitionFn<K>,
        sort_cmp: &'a SortCmp<K>,
        combiner: Option<&'a CombineFn<K, V>>,
    ) -> Self {
        MapEmitter {
            parts: (0..num_partitions).map(|_| Vec::new()).collect(),
            buffered_bytes: 0,
            threshold,
            partitioner,
            sort_cmp,
            combiner,
            runs: (0..num_partitions).map(|_| Vec::new()).collect(),
            output_records: 0,
            spills: 0,
            combine_in: 0,
            combine_out: 0,
            spill_secs: 0.0,
            spill_bytes: 0,
        }
    }

    fn spill(&mut self) {
        let spill_start = Instant::now();
        let mut spilled_any = false;
        for p in 0..self.parts.len() {
            if self.parts[p].is_empty() {
                continue;
            }
            spilled_any = true;
            let pairs = std::mem::take(&mut self.parts[p]);
            let sorted = sort_and_combine(
                pairs,
                self.sort_cmp,
                self.combiner,
                &mut self.combine_in,
                &mut self.combine_out,
            );
            let run = Run::encode(&sorted);
            self.spill_bytes += run.len_bytes() as u64;
            self.runs[p].push(run);
        }
        if spilled_any {
            self.spills += 1;
        }
        self.buffered_bytes = 0;
        self.spill_secs += spill_start.elapsed().as_secs_f64();
    }
}

impl<K: Key, V: Value> Emit<K, V> for MapEmitter<'_, K, V> {
    fn emit(&mut self, key: K, value: V) -> Result<()> {
        self.output_records += 1;
        self.buffered_bytes += key.encoded_len() + value.encoded_len();
        let p = (self.partitioner)(&key, self.parts.len() as u32) as usize;
        debug_assert!(p < self.parts.len(), "partitioner out of range");
        self.parts[p].push((key, value));
        if self.buffered_bytes >= self.threshold {
            self.spill();
        }
        Ok(())
    }
}

pub(crate) fn run_map_task<M: Mapper>(
    item: &MapItem<M>,
    attempt: usize,
    shared: &MapShared<'_, M>,
) -> Result<MapTaskOut> {
    let nodes = shared.cluster.config.nodes;
    // Retried attempts rotate to a different node — how a re-execution
    // escapes a dead or unhealthy machine.
    let node = (item.split.node_hint.unwrap_or(item.task_id % nodes) + attempt) % nodes;
    traced_attempt(
        shared.cluster,
        shared.job_name,
        Phase::Map,
        item.task_id,
        attempt,
        node,
        |o: &MapTaskOut| (o.input_bytes, o.output_records),
        || run_map_attempt(item, attempt, node, shared),
    )
}

fn run_map_attempt<M: Mapper>(
    item: &MapItem<M>,
    attempt: usize,
    node: usize,
    shared: &MapShared<'_, M>,
) -> Result<MapTaskOut> {
    let task_id = item.task_id;
    let split = &item.split;
    let mut mapper = item.mapper.clone();
    let start = Instant::now();
    let node_hint = split.node_hint;
    let input_bytes = split.size_hint;
    let label = format!("{}/map-{task_id}", shared.job_name);
    let fault = inject_start_faults(
        shared.cluster.config.faults.as_ref(),
        shared.job_name,
        Phase::Map,
        task_id,
        attempt,
        node,
        &label,
    )?;
    let mut ctx = TaskContext::new(
        Phase::Map,
        task_id,
        node,
        shared.num_reducers,
        shared.counters.clone(),
        shared.cluster.gauge(label.clone()),
        shared.cache.clone(),
        shared.dfs.clone(),
    );
    ctx.attempt = attempt;
    ctx.set_histograms(shared.histograms.clone());
    ctx.set_input_path(&split.tag);
    let records = split.read(shared.dfs)?;
    let mut emitter = MapEmitter::new(
        shared.num_reducers,
        shared.cluster.config.spill_buffer_bytes,
        shared.partitioner,
        shared.sort_cmp,
        shared.combiner,
    );
    mapper.setup(&ctx)?;
    let mut input_records = 0u64;
    for (k, v) in &records {
        mapper.map(k, v, &mut emitter, &ctx)?;
        input_records += 1;
    }
    mapper.cleanup(&mut emitter, &ctx)?;
    emitter.spill();
    if matches!(fault, Some(Fault::LateFail)) {
        // The work finished but the node died before the map output could
        // be served to reducers; the attempt counts as failed.
        return Err(MrError::TaskFailed(format!(
            "injected late fault: map output lost ({label} attempt {attempt})"
        )));
    }
    let elapsed = start.elapsed().as_secs_f64();
    // Per-phase profile: the attempt's time splits into spill encode and
    // everything else (read + user map function). Recorded only for
    // attempts that got this far, so failed attempts never skew the
    // attribution.
    shared
        .counters
        .get(profile::BUSY_SPILL_US)
        .add(secs_to_us(emitter.spill_secs));
    shared
        .counters
        .get(profile::BUSY_SPILL_BYTES)
        .add(emitter.spill_bytes);
    shared
        .counters
        .get(profile::BUSY_MAP_EXEC_US)
        .add(secs_to_us((elapsed - emitter.spill_secs).max(0.0)));
    let straggle = match fault {
        Some(Fault::Straggle(factor)) => factor,
        _ => 1.0,
    };
    Ok(MapTaskOut {
        task_id,
        duration: elapsed * straggle,
        base_duration: elapsed,
        node_hint,
        node,
        input_bytes,
        input_records,
        output_records: emitter.output_records,
        spills: emitter.spills,
        combine_in: emitter.combine_in,
        combine_out: emitter.combine_out,
        runs: emitter.runs,
    })
}

// ---- reduce side -------------------------------------------------------------

pub(crate) struct ReduceItem<M: Mapper, R: Reducer> {
    task_id: usize,
    runs: Vec<Run>,
    reducer: R,
    // M is only needed to name the key/value types.
    _m: std::marker::PhantomData<fn(M)>,
}

impl<M: Mapper, R: Reducer> ReduceItem<M, R> {
    pub(crate) fn new(task_id: usize, runs: Vec<Run>, reducer: R) -> Self {
        ReduceItem {
            task_id,
            runs,
            reducer,
            _m: std::marker::PhantomData,
        }
    }
}

pub(crate) struct ReduceShared<'a, M: Mapper, R: Reducer> {
    pub(crate) sort_cmp: &'a SortCmp<M::OutKey>,
    pub(crate) group_eq: &'a GroupEq<M::OutKey>,
    pub(crate) counters: &'a Counters,
    pub(crate) histograms: &'a Histograms,
    pub(crate) cache: &'a Cache,
    pub(crate) dfs: &'a Dfs,
    pub(crate) cluster: &'a Cluster,
    pub(crate) num_reducers: usize,
    pub(crate) output: &'a Output<R::OutKey, R::OutValue>,
    pub(crate) job_name: &'a str,
    pub(crate) key_label: Option<&'a KeyLabel<M::OutKey>>,
}

pub(crate) struct ReduceTaskOut {
    pub(crate) task_id: usize,
    /// Node label of the winning attempt (per-shard load accounting).
    pub(crate) node: usize,
    /// Simulated task seconds (measured, plus straggle inflation and
    /// retry backoff).
    pub(crate) duration: f64,
    /// What a healthy attempt would have taken (speculation baseline).
    pub(crate) base_duration: f64,
    pub(crate) input_bytes: u64,
    pub(crate) groups: u64,
    pub(crate) input_records: u64,
    pub(crate) output_records: u64,
    pub(crate) merge_passes: u64,
    /// Distribution of records per reduce group in this task.
    pub(crate) group_records: HistogramSnapshot,
    /// Shuffle records per labeled reduce key (jobs with a key labeler).
    pub(crate) key_counts: Option<TopK>,
}

impl SimCharge for ReduceTaskOut {
    fn charge_sim(&mut self, secs: f64) {
        self.duration += secs;
        self.base_duration += secs;
    }
}

/// Reduce-side output collector writing to the DFS.
enum Sink<K, V> {
    Null,
    Seq(SeqWriter),
    Text(TextWriter, TextFormat<K, V>),
}

struct ReduceEmitter<K, V> {
    sink: Sink<K, V>,
    records: u64,
}

impl<K: Value, V: Value> ReduceEmitter<K, V> {
    /// Open an *attempt-scoped* output: each attempt writes to its own
    /// hidden `_attempt-<task>-<n>` path, never directly to the part file.
    /// A stale file from a retried attempt that died post-close is
    /// replaced.
    fn open(dfs: &Dfs, output: &Output<K, V>, task_id: usize, attempt: usize) -> Result<Self> {
        if let Some(dir) = output.dir() {
            let _ = dfs.delete(&attempt_path(dir, task_id, attempt));
        }
        let sink = match output {
            Output::None => Sink::Null,
            Output::Seq(dir) => Sink::Seq(dfs.seq_writer(&attempt_path(dir, task_id, attempt))?),
            Output::Text(dir, fmt) => Sink::Text(
                dfs.text_writer(&attempt_path(dir, task_id, attempt))?,
                fmt.clone(),
            ),
        };
        Ok(ReduceEmitter { sink, records: 0 })
    }

    fn close(self) -> Result<u64> {
        match self.sink {
            Sink::Null => {}
            Sink::Seq(w) => w.close()?,
            Sink::Text(w, _) => w.close()?,
        }
        Ok(self.records)
    }
}

fn part_path(dir: &str, task_id: usize) -> String {
    format!("{}/part-{task_id:05}", dir.trim_end_matches('/'))
}

/// Hidden per-attempt output path; promoted to [`part_path`] on commit.
fn attempt_path(dir: &str, task_id: usize, attempt: usize) -> String {
    format!(
        "{}/_attempt-{task_id:05}-{attempt}",
        dir.trim_end_matches('/')
    )
}

impl<K: Value, V: Value> Emit<K, V> for ReduceEmitter<K, V> {
    fn emit(&mut self, key: K, value: V) -> Result<()> {
        self.records += 1;
        match &mut self.sink {
            Sink::Null => {}
            Sink::Seq(w) => w.write(&key, &value),
            Sink::Text(w, fmt) => w.write_line(&fmt(&key, &value)),
        }
        Ok(())
    }
}

pub(crate) fn run_reduce_task<M, R>(
    item: &ReduceItem<M, R>,
    attempt: usize,
    shared: &ReduceShared<'_, M, R>,
) -> Result<ReduceTaskOut>
where
    M: Mapper,
    R: Reducer<Key = M::OutKey, InValue = M::OutValue>,
{
    let task_id = item.task_id;
    let nodes = shared.cluster.config.nodes;
    let node = (task_id + attempt) % nodes;
    let result = traced_attempt(
        shared.cluster,
        shared.job_name,
        Phase::Reduce,
        task_id,
        attempt,
        node,
        |o: &ReduceTaskOut| (o.input_bytes, o.output_records),
        || run_reduce_attempt(item, attempt, node, shared),
    );
    if result.is_err() {
        // Task-level abort (Hadoop's OutputCommitter.abortTask): discard
        // whatever this attempt wrote so it can never be read as output.
        if let Some(dir) = shared.output.dir() {
            let _ = shared.dfs.delete(&attempt_path(dir, task_id, attempt));
            shared.counters.get("mr.output.aborts").incr();
            if let Some(t) = &shared.cluster.trace {
                t.emit(TraceEvent::new(EventKind::Abort, shared.job_name).at_task(
                    Phase::Reduce,
                    task_id,
                    attempt,
                    node,
                ));
            }
        }
    }
    result
}

fn run_reduce_attempt<M, R>(
    item: &ReduceItem<M, R>,
    attempt: usize,
    node: usize,
    shared: &ReduceShared<'_, M, R>,
) -> Result<ReduceTaskOut>
where
    M: Mapper,
    R: Reducer<Key = M::OutKey, InValue = M::OutValue>,
{
    let task_id = item.task_id;
    let runs = item.runs.clone();
    let mut reducer = item.reducer.clone();
    let start = Instant::now();
    let input_bytes: u64 = runs.iter().map(|r| r.len_bytes() as u64).sum();
    let label = format!("{}/reduce-{task_id}", shared.job_name);
    let fault = inject_start_faults(
        shared.cluster.config.faults.as_ref(),
        shared.job_name,
        Phase::Reduce,
        task_id,
        attempt,
        node,
        &label,
    )?;
    let mut ctx = TaskContext::new(
        Phase::Reduce,
        task_id,
        node,
        shared.num_reducers,
        shared.counters.clone(),
        shared.cluster.gauge(label.clone()),
        shared.cache.clone(),
        shared.dfs.clone(),
    );
    ctx.attempt = attempt;
    ctx.set_histograms(shared.histograms.clone());
    // Multi-pass merge when this partition has more runs than the factor
    // allows in a single pass (Hadoop's io.sort.factor).
    let merge_start = Instant::now();
    let (runs, merge_passes) = merge_to_factor::<M::OutKey, M::OutValue>(
        runs,
        shared.sort_cmp,
        shared.cluster.config.merge_factor,
    )?;
    let mut stream = MergeStream::new(runs, shared.sort_cmp.clone())?;
    let merge_secs = merge_start.elapsed().as_secs_f64();
    let mut emitter = ReduceEmitter::open(shared.dfs, shared.output, task_id, attempt)?;
    reducer.setup(&ctx)?;
    let mut groups = 0u64;
    let group_hist = Histogram::new();
    let mut key_counts = shared
        .key_label
        .map(|_| TopK::new(heavy_hitter_capacity(&shared.cluster.config)));
    let mut read_before = 0u64;
    while let Some(first_key) = stream.peek_key().cloned() {
        let mut group = GroupValues::new(&mut stream, first_key.clone(), shared.group_eq.clone());
        reducer.reduce(&first_key, &mut group, &mut emitter, &ctx)?;
        group.drain()?;
        let read = stream.records_read();
        let in_group = read - read_before;
        read_before = read;
        group_hist.record_count(in_group);
        if let (Some(tk), Some(kl)) = (key_counts.as_mut(), shared.key_label) {
            tk.add(&kl(&first_key), in_group);
        }
        groups += 1;
    }
    reducer.cleanup(&mut emitter, &ctx)?;
    let input_records = stream.records_read();
    let output_records = emitter.close()?;
    // The measured window ends here: commit bookkeeping and trace emission
    // below are never charged to simulated time.
    let elapsed = start.elapsed().as_secs_f64();
    if matches!(fault, Some(Fault::LateFail)) {
        // The attempt wrote its full output but died before committing —
        // the exact window the commit protocol exists for. The uncommitted
        // `_attempt-*` file is discarded by the abort path.
        return Err(MrError::TaskFailed(format!(
            "injected late fault: died before commit ({label} attempt {attempt})"
        )));
    }
    // Per-phase profile: merge vs. user reduce execution, recorded only
    // for attempts that survived (failed attempts never skew attribution).
    shared
        .counters
        .get(profile::BUSY_MERGE_US)
        .add(secs_to_us(merge_secs));
    shared
        .counters
        .get(profile::BUSY_REDUCE_EXEC_US)
        .add(secs_to_us((elapsed - merge_secs).max(0.0)));
    // Task commit: atomically promote the attempt file to the part file.
    // Exactly one attempt per task ever gets here, so commits == tasks.
    if let Some(dir) = shared.output.dir() {
        shared.dfs.rename(
            &attempt_path(dir, task_id, attempt),
            &part_path(dir, task_id),
        )?;
        shared.counters.get("mr.output.commits").incr();
        if let Some(t) = &shared.cluster.trace {
            t.emit(TraceEvent::new(EventKind::Commit, shared.job_name).at_task(
                Phase::Reduce,
                task_id,
                attempt,
                node,
            ));
        }
    }
    let straggle = match fault {
        Some(Fault::Straggle(factor)) => factor,
        _ => 1.0,
    };
    Ok(ReduceTaskOut {
        task_id,
        node,
        duration: elapsed * straggle,
        base_duration: elapsed,
        input_bytes,
        groups,
        input_records,
        output_records,
        merge_passes,
        group_records: group_hist.snapshot(),
        key_counts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[derive(Debug)]
    struct TestOut {
        sim: f64,
    }

    impl SimCharge for TestOut {
        fn charge_sim(&mut self, secs: f64) {
            self.sim += secs;
        }
    }

    fn policy(max_attempts: usize) -> RetryPolicy {
        RetryPolicy {
            max_attempts,
            backoff_secs: 1.0,
            backoff_cap_secs: 60.0,
        }
    }

    fn attempts_until<E>(
        max_attempts: usize,
        fail_with: E,
    ) -> (Result<(TestOut, RetryStats)>, usize)
    where
        E: Fn(usize) -> Option<MrError> + Sync,
    {
        let calls = AtomicUsize::new(0);
        let result = run_with_retries(&(), &policy(max_attempts), &|_, attempt| {
            calls.fetch_add(1, Ordering::Relaxed);
            match fail_with(attempt) {
                Some(e) => Err(e),
                None => Ok(TestOut { sim: 0.0 }),
            }
        });
        (result, calls.load(Ordering::Relaxed))
    }

    #[test]
    fn transient_errors_are_retried_until_success() {
        let (result, calls) = attempts_until(5, |attempt| {
            (attempt < 2).then(|| MrError::TaskFailed("flaky".into()))
        });
        let (out, stats) = result.unwrap();
        assert_eq!(calls, 3);
        assert_eq!(stats.retries, 2);
        // Exponential backoff charged to simulated time: 1s + 2s.
        assert!((out.sim - 3.0).abs() < 1e-12);
        assert!((stats.backoff_secs - 3.0).abs() < 1e-12);
    }

    #[test]
    fn transient_errors_exhaust_attempts() {
        let (result, calls) = attempts_until(3, |_| Some(MrError::TaskFailed("always".into())));
        assert!(matches!(result, Err(MrError::TaskFailed(_))));
        assert_eq!(calls, 3, "transient failures burn every attempt");
    }

    #[test]
    fn permanent_errors_fail_fast_per_variant() {
        let permanent: Vec<MrError> = vec![
            MrError::InvalidConfig("bad".into()),
            MrError::Codec("garbled".into()),
            MrError::FileNotFound("/x".into()),
            MrError::FileExists("/x".into()),
            MrError::OutOfMemory {
                task: "t".into(),
                requested: 2,
                budget: 1,
                transient: false,
            },
        ];
        for e in permanent {
            let (result, calls) = attempts_until(5, |_| Some(e.clone()));
            assert_eq!(result.unwrap_err(), e);
            assert_eq!(calls, 1, "permanent {e:?} must not be retried");
        }
    }

    #[test]
    fn transient_variants_are_each_retried() {
        let transient: Vec<MrError> = vec![
            MrError::TaskFailed("flaky".into()),
            MrError::TaskPanicked("boom".into()),
            MrError::NodeLost {
                node: 1,
                task: "t".into(),
            },
            MrError::OutOfMemory {
                task: "t".into(),
                requested: 2,
                budget: 1,
                transient: true,
            },
        ];
        for e in transient {
            let (result, calls) = attempts_until(2, |attempt| (attempt == 0).then(|| e.clone()));
            assert!(result.is_ok(), "{e:?} should be retried to success");
            assert_eq!(calls, 2);
        }
    }

    #[test]
    fn panics_become_classified_attempt_failures() {
        let calls = AtomicUsize::new(0);
        let result = run_with_retries(&(), &policy(1), &|_: &(), _| -> Result<TestOut> {
            calls.fetch_add(1, Ordering::Relaxed);
            panic!("user code exploded");
        });
        match result {
            Err(MrError::TaskPanicked(msg)) => assert!(msg.contains("user code exploded")),
            other => panic!("expected TaskPanicked, got {other:?}"),
        }
        // A panicking attempt is retried like any transient failure.
        let calls = AtomicUsize::new(0);
        let result = run_with_retries(&(), &policy(2), &|_: &(), _| -> Result<TestOut> {
            if calls.fetch_add(1, Ordering::Relaxed) == 0 {
                panic!("first attempt dies");
            }
            Ok(TestOut { sim: 0.0 })
        });
        assert!(result.is_ok());
        assert_eq!(calls.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn backoff_is_capped_exponential() {
        let p = RetryPolicy {
            max_attempts: 10,
            backoff_secs: 1.0,
            backoff_cap_secs: 5.0,
        };
        assert_eq!(p.backoff_after(0), 1.0);
        assert_eq!(p.backoff_after(1), 2.0);
        assert_eq!(p.backoff_after(2), 4.0);
        assert_eq!(p.backoff_after(3), 5.0, "capped");
        assert_eq!(p.backoff_after(100), 5.0, "huge attempt counts saturate");
        let none = RetryPolicy {
            max_attempts: 10,
            backoff_secs: 0.0,
            backoff_cap_secs: 5.0,
        };
        assert_eq!(none.backoff_after(3), 0.0);
    }
}
