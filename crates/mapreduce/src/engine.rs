//! The job executor: map phase, spill/combine, shuffle, merge, reduce phase,
//! and the cluster time model.

use std::time::Instant;

use parking_lot::Mutex;

use crate::cache::Cache;
use crate::cluster::{list_schedule_makespan, schedule_map_tasks, ClusterConfig, MapTaskSpec};
use crate::counters::Counters;
use crate::dfs::{Dfs, SeqWriter, TextWriter};
use crate::error::{MrError, Result};
use crate::input::SplitSource;
use crate::job::{Job, Output, TextFormat};
use crate::kv::{Key, Value};
use crate::mapper::Mapper;
use crate::memory::MemoryGauge;
use crate::metrics::{JobMetrics, PhaseMetrics};
use crate::partitioner::{GroupEq, PartitionFn, SortCmp};
use crate::reducer::{CombineFn, Reducer};
use crate::run::{merge_to_factor, sort_and_combine, GroupValues, MergeStream, Run};
use crate::task::{Emit, Phase, TaskContext};

/// A simulated shared-nothing cluster: a topology plus a DFS.
///
/// `Cluster::run` executes a [`Job`] to completion and returns its
/// [`JobMetrics`], including the simulated time the job would take on the
/// configured topology (see [`crate::cluster`] for the model).
pub struct Cluster {
    config: ClusterConfig,
    dfs: Dfs,
}

impl Cluster {
    /// Create a cluster with a fresh DFS using the given block size.
    pub fn new(config: ClusterConfig, dfs_block_size: usize) -> Result<Self> {
        config.validate().map_err(MrError::InvalidConfig)?;
        let dfs = Dfs::new(config.nodes, dfs_block_size);
        Ok(Cluster { config, dfs })
    }

    /// Create a cluster around an existing DFS (e.g. to re-run with a
    /// different topology over the same data).
    pub fn with_dfs(config: ClusterConfig, dfs: Dfs) -> Result<Self> {
        config.validate().map_err(MrError::InvalidConfig)?;
        Ok(Cluster { config, dfs })
    }

    /// The cluster's DFS handle.
    pub fn dfs(&self) -> &Dfs {
        &self.dfs
    }

    /// The cluster topology.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    fn gauge(&self, label: String) -> MemoryGauge {
        match self.config.task_memory {
            Some(b) => MemoryGauge::new(label, b),
            None => MemoryGauge::unlimited(label),
        }
    }

    /// Execute a job.
    pub fn run<M, R>(&self, job: Job<M, R>) -> Result<JobMetrics>
    where
        M: Mapper,
        R: Reducer<Key = M::OutKey, InValue = M::OutValue>,
    {
        let wall_start = Instant::now();
        let num_reducers = job
            .num_reducers
            .unwrap_or_else(|| self.config.default_reducers());
        if num_reducers == 0 {
            return Err(MrError::InvalidConfig(format!(
                "job {}: need at least one reducer",
                job.name
            )));
        }
        let counters = Counters::new();

        // ---- map phase ----------------------------------------------------
        let map_items: Vec<MapItem<M>> = job
            .inputs
            .into_iter()
            .enumerate()
            .map(|(task_id, split)| MapItem {
                task_id,
                split,
                mapper: job.mapper.clone(),
            })
            .collect();
        let num_map_tasks = map_items.len();
        let shared = MapShared {
            partitioner: &job.partitioner,
            sort_cmp: &job.sort_cmp,
            combiner: job.combiner.as_ref(),
            counters: &counters,
            cache: &job.cache,
            dfs: &self.dfs,
            cluster: self,
            num_reducers,
            job_name: &job.name,
        };
        let (mut map_outs, map_retries): (Vec<MapTaskOut>, u64) = run_tasks(
            map_items,
            self.config.physical_threads(),
            self.config.max_task_attempts,
            |item, attempt| run_map_task(item, attempt, &shared),
        )?;
        map_outs.sort_by_key(|o| o.task_id);

        // ---- shuffle: regroup runs by partition ----------------------------
        let mut partition_runs: Vec<Vec<Run>> = (0..num_reducers).map(|_| Vec::new()).collect();
        let mut shuffle_bytes = 0u64;
        let mut shuffle_records = 0u64;
        let mut spills = 0u64;
        for out in &mut map_outs {
            spills += out.spills;
            for (p, runs) in out.runs.drain(..).enumerate() {
                for run in runs {
                    shuffle_bytes += run.len_bytes() as u64;
                    shuffle_records += run.records as u64;
                    partition_runs[p].push(run);
                }
            }
        }

        // ---- reduce phase ---------------------------------------------------
        let reduce_items: Vec<ReduceItem<M, R>> = partition_runs
            .into_iter()
            .enumerate()
            .map(|(task_id, runs)| ReduceItem::<M, R>::new(task_id, runs, job.reducer.clone()))
            .collect();
        let rshared = ReduceShared {
            sort_cmp: &job.sort_cmp,
            group_eq: &job.group_eq,
            counters: &counters,
            cache: &job.cache,
            dfs: &self.dfs,
            cluster: self,
            num_reducers,
            output: &job.output,
            job_name: &job.name,
        };
        let (mut reduce_outs, reduce_retries): (Vec<ReduceTaskOut>, u64) = run_tasks(
            reduce_items,
            self.config.physical_threads(),
            self.config.max_task_attempts,
            |item, attempt| run_reduce_task(item, attempt, &rshared),
        )?;
        reduce_outs.sort_by_key(|o| o.task_id);

        // ---- metrics --------------------------------------------------------
        let overhead = self.config.network.task_overhead_secs;
        let map_specs: Vec<MapTaskSpec> = map_outs
            .iter()
            .map(|o| MapTaskSpec {
                duration: o.duration + overhead,
                node_hint: o.node_hint.map(|n| n % self.config.nodes),
                input_bytes: o.input_bytes,
            })
            .collect();
        let map_schedule = schedule_map_tasks(
            &map_specs,
            self.config.nodes,
            self.config.map_slots_per_node,
            &self.config.network,
        );
        let map_makespan = map_schedule.makespan;
        let reduce_sim: Vec<f64> = reduce_outs
            .iter()
            .map(|o| self.config.network.transfer_secs(o.input_bytes) + o.duration + overhead)
            .collect();
        let reduce_makespan = list_schedule_makespan(&reduce_sim, self.config.reduce_slots());

        let metrics = JobMetrics {
            name: job.name,
            map: PhaseMetrics {
                tasks: num_map_tasks,
                total_task_secs: map_outs.iter().map(|o| o.duration).sum(),
                max_task_secs: map_outs.iter().map(|o| o.duration).fold(0.0, f64::max),
                makespan_secs: map_makespan,
            },
            reduce: PhaseMetrics {
                tasks: num_reducers,
                total_task_secs: reduce_outs.iter().map(|o| o.duration).sum(),
                max_task_secs: reduce_outs.iter().map(|o| o.duration).fold(0.0, f64::max),
                makespan_secs: reduce_makespan,
            },
            map_local_tasks: map_schedule.local_tasks,
            map_remote_tasks: map_schedule.remote_tasks,
            task_retries: map_retries + reduce_retries,
            merge_passes: reduce_outs.iter().map(|o| o.merge_passes).sum(),
            map_input_records: map_outs.iter().map(|o| o.input_records).sum(),
            map_output_records: map_outs.iter().map(|o| o.output_records).sum(),
            combine_input_records: map_outs.iter().map(|o| o.combine_in).sum(),
            combine_output_records: map_outs.iter().map(|o| o.combine_out).sum(),
            shuffle_bytes,
            shuffle_records,
            spills,
            reduce_input_groups: reduce_outs.iter().map(|o| o.groups).sum(),
            reduce_input_records: reduce_outs.iter().map(|o| o.input_records).sum(),
            reduce_output_records: reduce_outs.iter().map(|o| o.output_records).sum(),
            shuffle_transfer_secs: reduce_outs
                .iter()
                .map(|o| self.config.network.transfer_secs(o.input_bytes))
                .fold(0.0, f64::max),
            sim_secs: map_makespan + reduce_makespan,
            wall_secs: wall_start.elapsed().as_secs_f64(),
            counters: counters.snapshot(),
        };
        Ok(metrics)
    }
}

// ---- generic task pool ----------------------------------------------------

/// Run one task with retries (Hadoop's task attempts): failed attempts are
/// re-executed up to `max_attempts` times; the last error is propagated.
/// Returns the output and the number of retries consumed.
fn run_with_retries<I, O>(
    item: &I,
    max_attempts: usize,
    f: &(impl Fn(&I, usize) -> Result<O> + Sync),
) -> Result<(O, u64)> {
    let mut last_err = None;
    for attempt in 0..max_attempts.max(1) {
        match f(item, attempt) {
            Ok(out) => return Ok((out, attempt as u64)),
            Err(e) => last_err = Some(e),
        }
    }
    Err(last_err.expect("at least one attempt"))
}

/// Run `items` through `f` on up to `threads` worker threads with per-task
/// retries, failing fast on the first exhausted task. Returns the outputs
/// and the total number of retries.
fn run_tasks<I, O, F>(
    items: Vec<I>,
    threads: usize,
    max_attempts: usize,
    f: F,
) -> Result<(Vec<O>, u64)>
where
    I: Send,
    O: Send,
    F: Fn(&I, usize) -> Result<O> + Sync,
{
    if items.is_empty() {
        return Ok((Vec::new(), 0));
    }
    let workers = threads.clamp(1, items.len());
    if workers == 1 {
        let mut outs = Vec::with_capacity(items.len());
        let mut retries = 0u64;
        for item in &items {
            let (out, r) = run_with_retries(item, max_attempts, &f)?;
            outs.push(out);
            retries += r;
        }
        return Ok((outs, retries));
    }
    let queue: Mutex<Vec<I>> = Mutex::new(items.into_iter().rev().collect());
    let results: Mutex<Vec<O>> = Mutex::new(Vec::new());
    let retries = std::sync::atomic::AtomicU64::new(0);
    let error: Mutex<Option<MrError>> = Mutex::new(None);
    crossbeam::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|_| loop {
                if error.lock().is_some() {
                    return;
                }
                let item = queue.lock().pop();
                let Some(item) = item else { return };
                match run_with_retries(&item, max_attempts, &f) {
                    Ok((out, r)) => {
                        retries.fetch_add(r, std::sync::atomic::Ordering::Relaxed);
                        results.lock().push(out);
                    }
                    Err(e) => {
                        error.lock().get_or_insert(e);
                        return;
                    }
                }
            });
        }
    })
    .expect("worker panicked");
    if let Some(e) = error.into_inner() {
        return Err(e);
    }
    Ok((
        results.into_inner(),
        retries.load(std::sync::atomic::Ordering::Relaxed),
    ))
}

// ---- map side ---------------------------------------------------------------

struct MapItem<M: Mapper> {
    task_id: usize,
    split: SplitSource<M::InKey, M::InValue>,
    mapper: M,
}

struct MapShared<'a, M: Mapper> {
    partitioner: &'a PartitionFn<M::OutKey>,
    sort_cmp: &'a SortCmp<M::OutKey>,
    combiner: Option<&'a CombineFn<M::OutKey, M::OutValue>>,
    counters: &'a Counters,
    cache: &'a Cache,
    dfs: &'a Dfs,
    cluster: &'a Cluster,
    num_reducers: usize,
    job_name: &'a str,
}

struct MapTaskOut {
    task_id: usize,
    duration: f64,
    node_hint: Option<usize>,
    input_bytes: u64,
    input_records: u64,
    output_records: u64,
    spills: u64,
    combine_in: u64,
    combine_out: u64,
    /// Spill runs per partition.
    runs: Vec<Vec<Run>>,
}

/// Map-side output collector with spill-and-combine behaviour.
struct MapEmitter<'a, K: Key, V: Value> {
    parts: Vec<Vec<(K, V)>>,
    buffered_bytes: usize,
    threshold: usize,
    partitioner: &'a PartitionFn<K>,
    sort_cmp: &'a SortCmp<K>,
    combiner: Option<&'a CombineFn<K, V>>,
    runs: Vec<Vec<Run>>,
    output_records: u64,
    spills: u64,
    combine_in: u64,
    combine_out: u64,
}

impl<'a, K: Key, V: Value> MapEmitter<'a, K, V> {
    fn new(
        num_partitions: usize,
        threshold: usize,
        partitioner: &'a PartitionFn<K>,
        sort_cmp: &'a SortCmp<K>,
        combiner: Option<&'a CombineFn<K, V>>,
    ) -> Self {
        MapEmitter {
            parts: (0..num_partitions).map(|_| Vec::new()).collect(),
            buffered_bytes: 0,
            threshold,
            partitioner,
            sort_cmp,
            combiner,
            runs: (0..num_partitions).map(|_| Vec::new()).collect(),
            output_records: 0,
            spills: 0,
            combine_in: 0,
            combine_out: 0,
        }
    }

    fn spill(&mut self) {
        let mut spilled_any = false;
        for p in 0..self.parts.len() {
            if self.parts[p].is_empty() {
                continue;
            }
            spilled_any = true;
            let pairs = std::mem::take(&mut self.parts[p]);
            let sorted = sort_and_combine(
                pairs,
                self.sort_cmp,
                self.combiner,
                &mut self.combine_in,
                &mut self.combine_out,
            );
            self.runs[p].push(Run::encode(&sorted));
        }
        if spilled_any {
            self.spills += 1;
        }
        self.buffered_bytes = 0;
    }
}

impl<K: Key, V: Value> Emit<K, V> for MapEmitter<'_, K, V> {
    fn emit(&mut self, key: K, value: V) -> Result<()> {
        self.output_records += 1;
        self.buffered_bytes += key.encoded_len() + value.encoded_len();
        let p = (self.partitioner)(&key, self.parts.len() as u32) as usize;
        debug_assert!(p < self.parts.len(), "partitioner out of range");
        self.parts[p].push((key, value));
        if self.buffered_bytes >= self.threshold {
            self.spill();
        }
        Ok(())
    }
}

fn run_map_task<M: Mapper>(
    item: &MapItem<M>,
    attempt: usize,
    shared: &MapShared<'_, M>,
) -> Result<MapTaskOut> {
    let task_id = item.task_id;
    let split = &item.split;
    let mut mapper = item.mapper.clone();
    let start = Instant::now();
    let node_hint = split.node_hint;
    let input_bytes = split.size_hint;
    let node = node_hint.unwrap_or(task_id % shared.cluster.config.nodes);
    let label = format!("{}/map-{task_id}", shared.job_name);
    let mut ctx = TaskContext::new(
        Phase::Map,
        task_id,
        node,
        shared.num_reducers,
        shared.counters.clone(),
        shared.cluster.gauge(label),
        shared.cache.clone(),
        shared.dfs.clone(),
    );
    ctx.attempt = attempt;
    ctx.set_input_path(&split.tag);
    let records = split.read(shared.dfs)?;
    let mut emitter = MapEmitter::new(
        shared.num_reducers,
        shared.cluster.config.spill_buffer_bytes,
        shared.partitioner,
        shared.sort_cmp,
        shared.combiner,
    );
    mapper.setup(&ctx)?;
    let mut input_records = 0u64;
    for (k, v) in &records {
        mapper.map(k, v, &mut emitter, &ctx)?;
        input_records += 1;
    }
    mapper.cleanup(&mut emitter, &ctx)?;
    emitter.spill();
    Ok(MapTaskOut {
        task_id,
        duration: start.elapsed().as_secs_f64(),
        node_hint,
        input_bytes,
        input_records,
        output_records: emitter.output_records,
        spills: emitter.spills,
        combine_in: emitter.combine_in,
        combine_out: emitter.combine_out,
        runs: emitter.runs,
    })
}

// ---- reduce side -------------------------------------------------------------

struct ReduceItem<M: Mapper, R: Reducer> {
    task_id: usize,
    runs: Vec<Run>,
    reducer: R,
    // M is only needed to name the key/value types.
    _m: std::marker::PhantomData<fn(M)>,
}

impl<M: Mapper, R: Reducer> ReduceItem<M, R> {
    fn new(task_id: usize, runs: Vec<Run>, reducer: R) -> Self {
        ReduceItem {
            task_id,
            runs,
            reducer,
            _m: std::marker::PhantomData,
        }
    }
}

struct ReduceShared<'a, M: Mapper, R: Reducer> {
    sort_cmp: &'a SortCmp<M::OutKey>,
    group_eq: &'a GroupEq<M::OutKey>,
    counters: &'a Counters,
    cache: &'a Cache,
    dfs: &'a Dfs,
    cluster: &'a Cluster,
    num_reducers: usize,
    output: &'a Output<R::OutKey, R::OutValue>,
    job_name: &'a str,
}

struct ReduceTaskOut {
    task_id: usize,
    duration: f64,
    input_bytes: u64,
    groups: u64,
    input_records: u64,
    output_records: u64,
    merge_passes: u64,
}

/// Reduce-side output collector writing to the DFS.
enum Sink<K, V> {
    Null,
    Seq(SeqWriter),
    Text(TextWriter, TextFormat<K, V>),
}

struct ReduceEmitter<K, V> {
    sink: Sink<K, V>,
    records: u64,
}

impl<K: Value, V: Value> ReduceEmitter<K, V> {
    fn open(dfs: &Dfs, output: &Output<K, V>, task_id: usize) -> Result<Self> {
        // A failed earlier attempt of this same task may have left a part
        // file behind; replace it (the path is namespaced by task id).
        if let Some(dir) = output.dir() {
            let _ = dfs.delete(&part_path(dir, task_id));
        }
        let sink = match output {
            Output::None => Sink::Null,
            Output::Seq(dir) => Sink::Seq(dfs.seq_writer(&part_path(dir, task_id))?),
            Output::Text(dir, fmt) => {
                Sink::Text(dfs.text_writer(&part_path(dir, task_id))?, fmt.clone())
            }
        };
        Ok(ReduceEmitter { sink, records: 0 })
    }

    fn close(self) -> Result<u64> {
        match self.sink {
            Sink::Null => {}
            Sink::Seq(w) => w.close()?,
            Sink::Text(w, _) => w.close()?,
        }
        Ok(self.records)
    }
}

fn part_path(dir: &str, task_id: usize) -> String {
    format!("{}/part-{task_id:05}", dir.trim_end_matches('/'))
}

impl<K: Value, V: Value> Emit<K, V> for ReduceEmitter<K, V> {
    fn emit(&mut self, key: K, value: V) -> Result<()> {
        self.records += 1;
        match &mut self.sink {
            Sink::Null => {}
            Sink::Seq(w) => w.write(&key, &value),
            Sink::Text(w, fmt) => w.write_line(&fmt(&key, &value)),
        }
        Ok(())
    }
}

fn run_reduce_task<M, R>(
    item: &ReduceItem<M, R>,
    attempt: usize,
    shared: &ReduceShared<'_, M, R>,
) -> Result<ReduceTaskOut>
where
    M: Mapper,
    R: Reducer<Key = M::OutKey, InValue = M::OutValue>,
{
    let task_id = item.task_id;
    let runs = item.runs.clone();
    let mut reducer = item.reducer.clone();
    let start = Instant::now();
    let input_bytes: u64 = runs.iter().map(|r| r.len_bytes() as u64).sum();
    let label = format!("{}/reduce-{task_id}", shared.job_name);
    let mut ctx = TaskContext::new(
        Phase::Reduce,
        task_id,
        task_id % shared.cluster.config.nodes,
        shared.num_reducers,
        shared.counters.clone(),
        shared.cluster.gauge(label),
        shared.cache.clone(),
        shared.dfs.clone(),
    );
    ctx.attempt = attempt;
    // Multi-pass merge when this partition has more runs than the factor
    // allows in a single pass (Hadoop's io.sort.factor).
    let (runs, merge_passes) = merge_to_factor::<M::OutKey, M::OutValue>(
        runs,
        shared.sort_cmp,
        shared.cluster.config.merge_factor,
    )?;
    let mut stream = MergeStream::new(runs, shared.sort_cmp.clone())?;
    let mut emitter = ReduceEmitter::open(shared.dfs, shared.output, task_id)?;
    reducer.setup(&ctx)?;
    let mut groups = 0u64;
    while let Some(first_key) = stream.peek_key().cloned() {
        let mut group = GroupValues::new(&mut stream, first_key.clone(), shared.group_eq.clone());
        reducer.reduce(&first_key, &mut group, &mut emitter, &ctx)?;
        group.drain()?;
        groups += 1;
    }
    reducer.cleanup(&mut emitter, &ctx)?;
    let input_records = stream.records_read();
    let output_records = emitter.close()?;
    Ok(ReduceTaskOut {
        task_id,
        duration: start.elapsed().as_secs_f64(),
        input_bytes,
        groups,
        input_records,
        output_records,
        merge_passes,
    })
}
