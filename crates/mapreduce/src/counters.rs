//! User-visible job counters, mirroring Hadoop's `Counter` facility.
//!
//! Counters are cheap to update from any task thread and are aggregated into
//! the final [`crate::JobMetrics`]. User code addresses them by name through
//! [`crate::TaskContext::counter`].

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

/// A single named counter. Cloning shares the underlying cell.
#[derive(Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Increment by one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A registry of named counters shared by every task of a job.
#[derive(Clone, Default)]
pub struct Counters {
    inner: Arc<RwLock<BTreeMap<String, Counter>>>,
}

impl Counters {
    /// Create an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fetch (creating if absent) the counter with the given name.
    pub fn get(&self, name: &str) -> Counter {
        if let Some(c) = self.inner.read().get(name) {
            return c.clone();
        }
        let mut map = self.inner.write();
        map.entry(name.to_string()).or_default().clone()
    }

    /// Snapshot all counters as `(name, value)` pairs in name order.
    pub fn snapshot(&self) -> Vec<(String, u64)> {
        self.inner
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect()
    }

    /// Value of a counter, or 0 if it was never touched.
    pub fn value(&self, name: &str) -> u64 {
        self.inner.read().get(name).map_or(0, Counter::get)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_across_clones() {
        let counters = Counters::new();
        let a = counters.get("records");
        let b = counters.get("records");
        a.add(3);
        b.incr();
        assert_eq!(counters.value("records"), 4);
        assert_eq!(counters.value("missing"), 0);
    }

    #[test]
    fn snapshot_is_name_ordered() {
        let counters = Counters::new();
        counters.get("zeta").add(1);
        counters.get("alpha").add(2);
        let snap = counters.snapshot();
        assert_eq!(
            snap,
            vec![("alpha".to_string(), 2), ("zeta".to_string(), 1)]
        );
    }

    #[test]
    fn counters_are_thread_safe() {
        let counters = Counters::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = counters.get("n");
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.incr();
                    }
                });
            }
        });
        assert_eq!(counters.value("n"), 4000);
    }
}
