//! Input splits: the units of work handed to map tasks.
//!
//! Each split carries a `tag` (the originating file path — the paper's BRJ
//! mapper dispatches on it) and a `node_hint` (the DFS node holding the
//! block). A job whose mapper consumes `(K, V)` records can mix splits from
//! any number of files with compatible record types — that is how the
//! engine models Hadoop's `MultipleInputs`.

use crate::dfs::{self, Dfs};
use crate::error::Result;
use crate::kv::Value;

type ReadFn<K, V> = Box<dyn Fn(&Dfs) -> Result<Vec<(K, V)>> + Send>;

/// One map task's input.
pub struct SplitSource<K, V> {
    /// Originating file path (exposed as [`crate::TaskContext::input_path`]).
    pub tag: String,
    /// DFS node holding the data, when known.
    pub node_hint: Option<usize>,
    /// Input size in bytes, for the locality model's remote-read penalty
    /// (0 when unknown).
    pub size_hint: u64,
    reader: ReadFn<K, V>,
}

impl<K: Value, V: Value> SplitSource<K, V> {
    /// A split backed by an arbitrary reader closure.
    pub fn from_reader(
        tag: impl Into<String>,
        node_hint: Option<usize>,
        reader: ReadFn<K, V>,
    ) -> Self {
        SplitSource {
            tag: tag.into(),
            node_hint,
            size_hint: 0,
            reader,
        }
    }

    /// A split backed by in-memory records (tests, synthetic inputs).
    pub fn from_records(tag: impl Into<String>, records: Vec<(K, V)>) -> Self {
        SplitSource {
            tag: tag.into(),
            node_hint: None,
            size_hint: 0,
            reader: Box::new(move |_dfs| Ok(records.clone())),
        }
    }

    /// Materialize the split's records. Readable repeatedly, so failed task
    /// attempts can be retried.
    pub fn read(&self, dfs: &Dfs) -> Result<Vec<(K, V)>> {
        (self.reader)(dfs)
    }
}

/// One split per block of a text file (or directory): records are
/// `(byte offset, line)` — Hadoop's `TextInputFormat`.
pub fn text_input(dfs: &Dfs, path: &str) -> Result<Vec<SplitSource<u64, String>>> {
    let splits = dfs.splits(path)?;
    Ok(splits
        .into_iter()
        .map(|block| SplitSource {
            tag: block.path.clone(),
            node_hint: Some(block.node),
            size_hint: block.data.len() as u64,
            reader: Box::new(move |_dfs| dfs::text_records(&block)),
        })
        .collect())
}

/// One split per block of a sequence file (or directory).
pub fn seq_input<K: Value, V: Value>(dfs: &Dfs, path: &str) -> Result<Vec<SplitSource<K, V>>> {
    let splits = dfs.splits(path)?;
    Ok(splits
        .into_iter()
        .map(|block| SplitSource {
            tag: block.path.clone(),
            node_hint: Some(block.node),
            size_hint: block.data.len() as u64,
            reader: Box::new(move |_dfs| dfs::seq_records::<K, V>(&block)),
        })
        .collect())
}

/// Partition in-memory records into `n` splits round-robin — a convenience
/// for engine tests that do not involve the DFS.
pub fn mem_input<K: Value, V: Value>(
    tag: &str,
    records: Vec<(K, V)>,
    n: usize,
) -> Vec<SplitSource<K, V>> {
    assert!(n > 0);
    let mut buckets: Vec<Vec<(K, V)>> = (0..n).map(|_| Vec::new()).collect();
    for (i, kv) in records.into_iter().enumerate() {
        buckets[i % n].push(kv);
    }
    buckets
        .into_iter()
        .enumerate()
        .filter(|(_, b)| !b.is_empty())
        .map(|(i, b)| SplitSource::from_records(format!("{tag}#{i}"), b))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_input_round_robins() {
        let records: Vec<(u32, u32)> = (0..7).map(|i| (i, i * 10)).collect();
        let splits = mem_input("t", records, 3);
        assert_eq!(splits.len(), 3);
        let dfs = Dfs::new(1, 64);
        let lens: Vec<usize> = splits
            .into_iter()
            .map(|s| s.read(&dfs).unwrap().len())
            .collect();
        assert_eq!(lens, vec![3, 2, 2]);
    }

    #[test]
    fn text_input_splits_carry_tags_and_hints() {
        let dfs = Dfs::new(2, 16);
        dfs.write_text("/in", (0..10).map(|i| format!("row-{i}")))
            .unwrap();
        let splits = text_input(&dfs, "/in").unwrap();
        assert!(splits.len() > 1);
        for s in &splits {
            assert_eq!(s.tag, "/in");
            assert!(s.node_hint.is_some());
        }
        let total: usize = splits
            .into_iter()
            .map(|s| s.read(&dfs).unwrap().len())
            .sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn seq_input_roundtrip() {
        let dfs = Dfs::new(1, 32);
        let pairs: Vec<(u64, u64)> = (0..20).map(|i| (i, i * i)).collect();
        dfs.write_seq("/s", &pairs).unwrap();
        let splits = seq_input::<u64, u64>(&dfs, "/s").unwrap();
        let mut all = Vec::new();
        for s in splits {
            all.extend(s.read(&dfs).unwrap());
        }
        assert_eq!(all, pairs);
    }
}
