//! In-memory simulation of a block-based distributed file system.
//!
//! Files are sequences of blocks; each block is placed on a simulated node in
//! round-robin order — the balanced layout the paper establishes before every
//! experiment ("we exploited the fact that Hadoop chooses the disk to write
//! the data using a Round-Robin order"). Map tasks are derived one-per-block,
//! so input balance across nodes is reproduced faithfully.
//!
//! Two file kinds exist, mirroring Hadoop text files and `SequenceFile`s:
//!
//! * **text** — newline-separated lines; blocks are cut at line boundaries so
//!   a split never straddles blocks. Records are `(byte offset, line)`.
//! * **seq** — back-to-back [`Codec`]-encoded `(key, value)` pairs; blocks
//!   are cut at pair boundaries.
//!
//! Reduce outputs follow the Hadoop naming convention `dir/part-NNNNN`; read
//! helpers accept either a single file path or a directory and concatenate
//! parts in name order.
//!
//! Every file carries a CRC-32 of its contents, computed when the file is
//! finished and verified on every read (`read_text`, `read_seq`, `splits`)
//! — the simulated equivalent of HDFS block checksums. A mismatch surfaces
//! as [`MrError::ChecksumMismatch`]; corrupt data is never returned.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::RwLock;

use crate::codec::{read_varint, write_varint, ByteReader, Codec};
use crate::error::{MrError, Result};

/// What a file contains, for sanity-checking readers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Newline-separated UTF-8 text.
    Text,
    /// Codec-encoded `(key, value)` pairs.
    Seq,
}

#[derive(Debug, Clone)]
struct Block {
    data: Bytes,
    node: usize,
    /// Byte offset of this block within the file.
    offset: u64,
}

#[derive(Debug, Clone)]
struct DfsFile {
    kind: FileKind,
    blocks: Vec<Block>,
    len: u64,
    /// CRC-32 (IEEE) of the file's bytes, fixed at write time.
    crc: u32,
}

impl DfsFile {
    fn data_crc(&self) -> u32 {
        let mut crc = Crc32::new();
        for b in &self.blocks {
            crc.update(&b.data);
        }
        crc.finish()
    }

    /// Verify stored bytes against the write-time CRC.
    fn check(&self, path: &str) -> Result<()> {
        let found = self.data_crc();
        if found != self.crc {
            return Err(MrError::ChecksumMismatch {
                path: path.to_string(),
                expected: self.crc,
                found,
            });
        }
        Ok(())
    }
}

/// Incremental CRC-32 (IEEE 802.3 polynomial, reflected), the checksum HDFS
/// uses per block. Bitwise — no table — since files here are small and the
/// check runs once per read.
pub(crate) struct Crc32(u32);

impl Crc32 {
    pub(crate) fn new() -> Self {
        Crc32(0xFFFF_FFFF)
    }

    pub(crate) fn update(&mut self, data: &[u8]) {
        let mut crc = self.0;
        for &byte in data {
            crc ^= u32::from(byte);
            for _ in 0..8 {
                let mask = (crc & 1).wrapping_neg();
                crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
            }
        }
        self.0 = crc;
    }

    pub(crate) fn finish(self) -> u32 {
        !self.0
    }
}

#[derive(Default)]
struct DfsInner {
    files: BTreeMap<String, DfsFile>,
}

/// Where a [`Dfs`] keeps its files.
enum Store {
    /// The original in-process store: one map behind a lock.
    Mem(RwLock<DfsInner>),
    /// Disk-backed: every DFS file is a real container file under a root
    /// directory, so independent *processes* opening the same root see the
    /// same file system (the process execution backend's storage plane).
    Disk(DiskStore),
}

/// Container-file magic: identifies (and versions) the on-disk format.
const CONTAINER_MAGIC: &[u8; 8] = b"MRDFSv1\0";

/// Monotonic discriminator for temp files and temp roots in this process.
static DISK_SEQ: AtomicU64 = AtomicU64::new(0);

/// Map an OS error on a DFS path to the closest classified [`MrError`].
fn io_fail(path: &str, e: std::io::Error) -> MrError {
    match e.kind() {
        std::io::ErrorKind::NotFound => MrError::FileNotFound(path.to_string()),
        std::io::ErrorKind::AlreadyExists => MrError::FileExists(path.to_string()),
        _ => MrError::Codec(format!("dfs io failure on {path}: {e}")),
    }
}

/// The disk-backed store: DFS files live under `<root>/fs/`, atomic-create
/// temporaries under `<root>/tmp/`, and worker spill runs (owned by the
/// process backend, not by this module) under `<root>/shuffle/`.
struct DiskStore {
    root: PathBuf,
    /// Remove the whole root when the last handle drops (temp roots only).
    cleanup: bool,
}

impl Drop for DiskStore {
    fn drop(&mut self) {
        if self.cleanup {
            let _ = fs::remove_dir_all(&self.root);
        }
    }
}

impl DiskStore {
    fn fs_root(&self) -> PathBuf {
        self.root.join("fs")
    }

    /// Real path for a DFS path, rejecting traversal and empty components.
    fn target_path(&self, path: &str) -> Result<PathBuf> {
        let rel = path.trim_start_matches('/');
        if rel.is_empty() {
            return Err(MrError::InvalidConfig(format!("invalid DFS path {path:?}")));
        }
        let mut out = self.fs_root();
        for comp in rel.split('/') {
            if comp.is_empty() || comp == "." || comp == ".." {
                return Err(MrError::InvalidConfig(format!(
                    "invalid DFS path component in {path:?}"
                )));
            }
            out.push(comp);
        }
        Ok(out)
    }

    fn load(&self, path: &str) -> Result<DfsFile> {
        let bytes = fs::read(self.target_path(path)?).map_err(|e| io_fail(path, e))?;
        decode_container(path, &bytes)
    }

    /// Write a container file. Without `overwrite` the create is atomic and
    /// exclusive (temp write + hard link), preserving the in-memory store's
    /// create-or-`FileExists` semantics even across racing processes; with
    /// it, an atomic `rename` replaces whatever is there.
    fn save(&self, path: &str, file: &DfsFile, overwrite: bool) -> Result<()> {
        let target = self.target_path(path)?;
        if let Some(parent) = target.parent() {
            fs::create_dir_all(parent).map_err(|e| io_fail(path, e))?;
        }
        let tmp = self.root.join("tmp").join(format!(
            "{}-{}",
            std::process::id(),
            DISK_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        fs::write(&tmp, encode_container(file)).map_err(|e| io_fail(path, e))?;
        if overwrite {
            fs::rename(&tmp, &target).map_err(|e| io_fail(path, e))
        } else {
            let linked = fs::hard_link(&tmp, &target).map_err(|e| io_fail(path, e));
            let _ = fs::remove_file(&tmp);
            linked
        }
    }

    /// Every DFS path present on disk, name-ordered.
    fn all_keys(&self) -> Vec<String> {
        fn walk(dir: &Path, root: &Path, out: &mut Vec<String>) {
            let Ok(entries) = fs::read_dir(dir) else {
                return;
            };
            for entry in entries.flatten() {
                let p = entry.path();
                if p.is_dir() {
                    walk(&p, root, out);
                } else if let Ok(rel) = p.strip_prefix(root) {
                    if let Some(rel) = rel.to_str() {
                        out.push(format!("/{rel}"));
                    }
                }
            }
        }
        let mut out = Vec::new();
        walk(&self.fs_root(), &self.fs_root(), &mut out);
        out.sort();
        out
    }
}

/// Serialize a [`DfsFile`] into the container format: magic, then a
/// codec-encoded header (kind, CRC, length, block table), then the raw
/// block payloads back to back.
fn encode_container(file: &DfsFile) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 + file.len as usize);
    out.extend_from_slice(CONTAINER_MAGIC);
    let kind: u8 = match file.kind {
        FileKind::Text => 0,
        FileKind::Seq => 1,
    };
    kind.encode(&mut out);
    file.crc.encode(&mut out);
    file.len.encode(&mut out);
    write_varint(file.blocks.len() as u64, &mut out);
    for b in &file.blocks {
        write_varint(b.data.len() as u64, &mut out);
        write_varint(b.node as u64, &mut out);
    }
    for b in &file.blocks {
        out.extend_from_slice(&b.data);
    }
    out
}

/// Parse a container file. Structural damage (bad magic, truncated header,
/// short payload) is a codec error; *payload* damage is intentionally left
/// for the CRC check on read, exactly like the in-memory store.
fn decode_container(path: &str, bytes: &[u8]) -> Result<DfsFile> {
    let corrupt = |why: &str| MrError::Codec(format!("corrupt DFS container {path}: {why}"));
    if bytes.len() < CONTAINER_MAGIC.len() || &bytes[..CONTAINER_MAGIC.len()] != CONTAINER_MAGIC {
        return Err(corrupt("bad magic"));
    }
    let mut r = ByteReader::new(&bytes[CONTAINER_MAGIC.len()..]);
    let kind = match u8::decode(&mut r)? {
        0 => FileKind::Text,
        1 => FileKind::Seq,
        k => return Err(corrupt(&format!("unknown file kind {k}"))),
    };
    let crc = u32::decode(&mut r)?;
    let len = u64::decode(&mut r)?;
    let n_blocks = read_varint(&mut r)?;
    // Bound the table by what the input can hold (2 bytes minimum per
    // entry) before any allocation — same discipline as the codec layer.
    if n_blocks > (r.remaining() as u64) / 2 {
        return Err(corrupt("block table longer than file"));
    }
    let mut table = Vec::with_capacity(n_blocks as usize);
    for _ in 0..n_blocks {
        let blen = read_varint(&mut r)?;
        let node = read_varint(&mut r)?;
        table.push((blen, node as usize));
    }
    let mut blocks = Vec::with_capacity(table.len());
    let mut offset = 0u64;
    for (blen, node) in table {
        let blen = usize::try_from(blen).map_err(|_| corrupt("block length overflow"))?;
        if blen > r.remaining() {
            return Err(corrupt("payload shorter than block table"));
        }
        let data = r.take(blen)?;
        blocks.push(Block {
            data: Bytes::from(data.to_vec()),
            node,
            offset,
        });
        offset += blen as u64;
    }
    if !r.is_empty() {
        return Err(corrupt("trailing bytes after payload"));
    }
    Ok(DfsFile {
        kind,
        blocks,
        len,
        crc,
    })
}

/// Handle to the simulated distributed file system. Cloning is cheap and
/// shares the underlying store.
#[derive(Clone)]
pub struct Dfs {
    store: Arc<Store>,
    block_size: usize,
    nodes: usize,
    next_node: Arc<AtomicUsize>,
}

/// One input split: a single block of a single file, pinned to a node.
#[derive(Debug, Clone)]
pub struct BlockSplit {
    /// File the split came from.
    pub path: String,
    /// Node holding the block.
    pub node: usize,
    /// Byte offset of the block within the file.
    pub offset: u64,
    /// Raw block contents.
    pub data: Bytes,
    /// File kind, for the record reader.
    pub kind: FileKind,
}

impl Dfs {
    /// Create a DFS spanning `nodes` simulated nodes with the given block
    /// size in bytes (the paper uses 128 MB; tests use much smaller blocks to
    /// exercise multi-block logic).
    pub fn new(nodes: usize, block_size: usize) -> Self {
        assert!(nodes > 0, "DFS needs at least one node");
        assert!(block_size >= 16, "block size too small");
        Dfs {
            store: Arc::new(Store::Mem(RwLock::new(DfsInner::default()))),
            block_size,
            nodes,
            next_node: Arc::new(AtomicUsize::new(0)),
        }
    }

    /// Open (or create) a disk-backed DFS rooted at `root`. Independent
    /// process handles opening the same root share the file system — this
    /// is the storage plane of the process execution backend. The root is
    /// left in place when the handle drops.
    ///
    /// Block *placement* counters are per-handle, so round-robin node
    /// assignment restarts in every process; placement affects locality
    /// accounting only, never file bytes, so backend parity is unaffected.
    pub fn new_disk(nodes: usize, block_size: usize, root: impl AsRef<Path>) -> Result<Self> {
        assert!(nodes > 0, "DFS needs at least one node");
        assert!(block_size >= 16, "block size too small");
        let root = root.as_ref().to_path_buf();
        for sub in ["fs", "tmp", "shuffle"] {
            fs::create_dir_all(root.join(sub))
                .map_err(|e| io_fail(&root.join(sub).to_string_lossy(), e))?;
        }
        Ok(Dfs {
            store: Arc::new(Store::Disk(DiskStore {
                root,
                cleanup: false,
            })),
            block_size,
            nodes,
            next_node: Arc::new(AtomicUsize::new(0)),
        })
    }

    /// Disk-backed DFS under a fresh unique directory in the system temp
    /// dir, removed when the last handle drops. Used when the process
    /// backend runs without an explicit `--dfs-root`.
    pub fn new_temp_disk(nodes: usize, block_size: usize) -> Result<Self> {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.subsec_nanos())
            .unwrap_or(0);
        let root = std::env::temp_dir().join(format!(
            "mrdfs-{}-{nanos}-{}",
            std::process::id(),
            DISK_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let dfs = Self::new_disk(nodes, block_size, &root)?;
        if let Store::Disk(_) = &*dfs.store {
            // Rebuild the Arc with cleanup enabled (no other handle exists
            // yet, so this cannot race).
            return Ok(Dfs {
                store: Arc::new(Store::Disk(DiskStore {
                    root,
                    cleanup: true,
                })),
                ..dfs
            });
        }
        Ok(dfs)
    }

    /// Root directory when disk-backed, `None` for the in-memory store.
    pub fn disk_root(&self) -> Option<&Path> {
        match &*self.store {
            Store::Mem(_) => None,
            Store::Disk(d) => Some(&d.root),
        }
    }

    /// Block size in bytes.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Number of simulated nodes.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    fn place(&self) -> usize {
        self.next_node.fetch_add(1, Ordering::Relaxed) % self.nodes
    }

    /// Fetch one file's metadata and bytes, whichever store holds them.
    fn load(&self, path: &str) -> Result<DfsFile> {
        match &*self.store {
            Store::Mem(inner) => inner
                .read()
                .files
                .get(path)
                .cloned()
                .ok_or_else(|| MrError::FileNotFound(path.to_string())),
            Store::Disk(d) => d.load(path),
        }
    }

    /// Every file path in the store, name-ordered.
    fn all_keys(&self) -> Vec<String> {
        match &*self.store {
            Store::Mem(inner) => inner.read().files.keys().cloned().collect(),
            Store::Disk(d) => d.all_keys(),
        }
    }

    fn insert(&self, path: &str, file: DfsFile, overwrite: bool) -> Result<()> {
        match &*self.store {
            Store::Mem(inner) => {
                let mut inner = inner.write();
                if !overwrite && inner.files.contains_key(path) {
                    return Err(MrError::FileExists(path.to_string()));
                }
                inner.files.insert(path.to_string(), file);
                Ok(())
            }
            Store::Disk(d) => d.save(path, &file, overwrite),
        }
    }

    /// True if `path` names an existing file.
    pub fn exists(&self, path: &str) -> bool {
        match &*self.store {
            Store::Mem(inner) => inner.read().files.contains_key(path),
            Store::Disk(d) => d.target_path(path).map(|p| p.is_file()).unwrap_or(false),
        }
    }

    /// Atomically rename `from` to `to`, replacing any existing `to`. This
    /// is the commit step of the engine's output-commit protocol (Hadoop's
    /// `OutputCommitter` renaming an attempt path into place): in-memory the
    /// removal of `from` and the appearance of `to` happen under one write
    /// lock; on disk it is a single `rename(2)` — either way no reader ever
    /// observes a half-committed output.
    pub fn rename(&self, from: &str, to: &str) -> Result<()> {
        match &*self.store {
            Store::Mem(inner) => {
                let mut inner = inner.write();
                let file = inner
                    .files
                    .remove(from)
                    .ok_or_else(|| MrError::FileNotFound(from.to_string()))?;
                inner.files.insert(to.to_string(), file);
                Ok(())
            }
            Store::Disk(d) => {
                let src = d.target_path(from)?;
                let dst = d.target_path(to)?;
                if let Some(parent) = dst.parent() {
                    fs::create_dir_all(parent).map_err(|e| io_fail(to, e))?;
                }
                fs::rename(&src, &dst).map_err(|e| io_fail(from, e))
            }
        }
    }

    /// Delete one file. Missing files are an error.
    pub fn delete(&self, path: &str) -> Result<()> {
        match &*self.store {
            Store::Mem(inner) => inner
                .write()
                .files
                .remove(path)
                .map(|_| ())
                .ok_or_else(|| MrError::FileNotFound(path.to_string())),
            Store::Disk(d) => fs::remove_file(d.target_path(path)?).map_err(|e| io_fail(path, e)),
        }
    }

    /// Delete every file under `prefix` (treated as a directory). Returns the
    /// number of files removed.
    pub fn delete_prefix(&self, prefix: &str) -> usize {
        let doomed = self.list(prefix);
        for k in &doomed {
            let _ = self.delete(k);
        }
        doomed.len()
    }

    /// All file paths under `prefix` (or the file itself), name-ordered.
    pub fn list(&self, prefix: &str) -> Vec<String> {
        let dir = dir_prefix(prefix);
        self.all_keys()
            .into_iter()
            .filter(|k| k.as_str() == prefix || k.starts_with(&dir))
            .collect()
    }

    /// Length of a single file in bytes.
    pub fn file_len(&self, path: &str) -> Result<u64> {
        self.load(path).map(|f| f.len)
    }

    /// CRC-32 recorded when `path` was written. This is the *stored*
    /// checksum (what commit manifests record); it does not compare against
    /// the data — use [`Dfs::verify`] to check the bytes against it.
    pub fn file_crc(&self, path: &str) -> Result<u32> {
        self.load(path).map(|f| f.crc)
    }

    /// Re-read `path`'s bytes and compare against the stored CRC, exactly
    /// as every read does. Returns [`MrError::ChecksumMismatch`] on
    /// corruption.
    pub fn verify(&self, path: &str) -> Result<()> {
        self.load(path)?.check(path)
    }

    /// Flip one bit of `path`'s first non-empty block *without* updating
    /// the stored CRC — fault injection's corrupt-a-committed-file knob.
    /// Empty files have no byte to flip and are rejected.
    pub fn corrupt(&self, path: &str) -> Result<()> {
        let mut file = self.load(path)?;
        let block = file
            .blocks
            .iter_mut()
            .find(|b| !b.data.is_empty())
            .ok_or_else(|| MrError::InvalidConfig(format!("cannot corrupt empty file {path}")))?;
        let mut data = block.data.to_vec();
        data[0] ^= 0x01;
        block.data = Bytes::from(data);
        self.insert(path, file, true)
    }

    /// Non-hidden file paths under `prefix` (or the file itself),
    /// name-ordered: the files a directory read would concatenate. Empty
    /// when nothing is there.
    pub fn data_files(&self, prefix: &str) -> Vec<String> {
        self.list(prefix)
            .into_iter()
            .filter(|p| !is_hidden(p))
            .collect()
    }

    /// Total bytes stored under `prefix` (file or directory).
    pub fn len_under(&self, prefix: &str) -> u64 {
        self.list(prefix)
            .iter()
            .filter_map(|p| self.load(p).ok())
            .map(|f| f.len)
            .sum()
    }

    /// Bytes resident on each node, for balance inspection.
    pub fn node_bytes(&self) -> Vec<u64> {
        let mut out = vec![0u64; self.nodes];
        for path in self.all_keys() {
            if let Ok(file) = self.load(&path) {
                for b in &file.blocks {
                    out[b.node] += b.data.len() as u64;
                }
            }
        }
        out
    }

    // ---- text files ------------------------------------------------------

    /// Write a text file from lines. Blocks are cut at line boundaries once
    /// the accumulated block reaches the block size.
    pub fn write_text<I, S>(&self, path: &str, lines: I) -> Result<()>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut w = self.text_writer(path)?;
        for line in lines {
            w.write_line(line.as_ref());
        }
        w.close()
    }

    /// Streaming text writer (used by reduce tasks for text outputs).
    pub fn text_writer(&self, path: &str) -> Result<TextWriter> {
        if self.exists(path) {
            return Err(MrError::FileExists(path.to_string()));
        }
        Ok(TextWriter {
            dfs: self.clone(),
            path: path.to_string(),
            buf: Vec::with_capacity(self.block_size.min(1 << 20)),
            blocks: Vec::new(),
            offset: 0,
            closed: false,
        })
    }

    /// Read all lines of a text file or of every `part-*` under a directory.
    pub fn read_text(&self, path: &str) -> Result<Vec<String>> {
        let paths = self.resolve(path)?;
        let mut out = Vec::new();
        for p in &paths {
            let file = self.load(p)?;
            if file.kind != FileKind::Text {
                return Err(MrError::Codec(format!("{p} is not a text file")));
            }
            file.check(p)?;
            for b in &file.blocks {
                let text = std::str::from_utf8(&b.data)
                    .map_err(|e| MrError::Codec(format!("{p}: invalid utf-8: {e}")))?;
                out.extend(text.lines().map(str::to_string));
            }
        }
        Ok(out)
    }

    // ---- seq files -------------------------------------------------------

    /// Write a sequence file of encoded `(key, value)` pairs.
    pub fn write_seq<K: Codec, V: Codec>(&self, path: &str, pairs: &[(K, V)]) -> Result<()> {
        let mut w = self.seq_writer(path)?;
        for (k, v) in pairs {
            w.write(k, v);
        }
        w.close()
    }

    /// Streaming sequence-file writer.
    pub fn seq_writer(&self, path: &str) -> Result<SeqWriter> {
        if self.exists(path) {
            return Err(MrError::FileExists(path.to_string()));
        }
        Ok(SeqWriter {
            dfs: self.clone(),
            path: path.to_string(),
            buf: Vec::with_capacity(self.block_size.min(1 << 20)),
            blocks: Vec::new(),
            offset: 0,
            closed: false,
        })
    }

    /// Read every `(key, value)` pair of a seq file or directory of parts.
    pub fn read_seq<K: Codec, V: Codec>(&self, path: &str) -> Result<Vec<(K, V)>> {
        let paths = self.resolve(path)?;
        let mut out = Vec::new();
        for p in &paths {
            let file = self.load(p)?;
            if file.kind != FileKind::Seq {
                return Err(MrError::Codec(format!("{p} is not a seq file")));
            }
            file.check(p)?;
            for b in &file.blocks {
                let mut r = ByteReader::new(&b.data);
                while !r.is_empty() {
                    let k = K::decode(&mut r)?;
                    let v = V::decode(&mut r)?;
                    out.push((k, v));
                }
            }
        }
        Ok(out)
    }

    // ---- splits ----------------------------------------------------------

    /// One split per block for a file or directory, for the map phase.
    pub fn splits(&self, path: &str) -> Result<Vec<BlockSplit>> {
        let paths = self.resolve(path)?;
        let mut out = Vec::new();
        for p in &paths {
            let file = self.load(p)?;
            file.check(p)?;
            for b in &file.blocks {
                out.push(BlockSplit {
                    path: p.clone(),
                    node: b.node,
                    offset: b.offset,
                    data: b.data.clone(),
                    kind: file.kind,
                });
            }
        }
        Ok(out)
    }

    /// Resolve a path to itself (if a file) or the sorted list of files under
    /// it (if a directory). Directory resolution skips hidden files —
    /// basenames starting with `_` or `.` — matching Hadoop's input-path
    /// filter, so uncommitted `_attempt-*` outputs are never read as data.
    fn resolve(&self, path: &str) -> Result<Vec<String>> {
        if self.exists(path) {
            return Ok(vec![path.to_string()]);
        }
        let listed: Vec<String> = self
            .list(path)
            .into_iter()
            .filter(|p| !is_hidden(p))
            .collect();
        if listed.is_empty() {
            return Err(MrError::FileNotFound(path.to_string()));
        }
        Ok(listed)
    }

    fn finish_file(
        &self,
        path: &str,
        kind: FileKind,
        mut blocks: Vec<Block>,
        buf: Vec<u8>,
        offset: u64,
    ) -> Result<()> {
        let len = offset + buf.len() as u64;
        if !buf.is_empty() {
            blocks.push(Block {
                data: Bytes::from(buf),
                node: self.place(),
                offset,
            });
        }
        let mut crc = Crc32::new();
        for b in &blocks {
            crc.update(&b.data);
        }
        let crc = crc.finish();
        self.insert(
            path,
            DfsFile {
                kind,
                blocks,
                len,
                crc,
            },
            false,
        )
    }
}

/// True for paths whose basename marks them hidden (`_attempt-*`, `_logs`,
/// `_SUCCESS`, dotfiles) — excluded from directory reads and splits.
pub fn is_hidden(path: &str) -> bool {
    path.rsplit('/')
        .next()
        .is_some_and(|base| base.starts_with('_') || base.starts_with('.'))
}

fn dir_prefix(prefix: &str) -> String {
    let mut d = prefix.to_string();
    if !d.ends_with('/') {
        d.push('/');
    }
    d
}

/// Streaming writer for text files; see [`Dfs::text_writer`].
pub struct TextWriter {
    dfs: Dfs,
    path: String,
    buf: Vec<u8>,
    blocks: Vec<Block>,
    offset: u64,
    closed: bool,
}

impl TextWriter {
    /// Append one line (a trailing newline is added).
    pub fn write_line(&mut self, line: &str) {
        debug_assert!(!self.closed);
        self.buf.extend_from_slice(line.as_bytes());
        self.buf.push(b'\n');
        if self.buf.len() >= self.dfs.block_size {
            self.cut_block();
        }
    }

    fn cut_block(&mut self) {
        let data = std::mem::take(&mut self.buf);
        let len = data.len() as u64;
        self.blocks.push(Block {
            data: Bytes::from(data),
            node: self.dfs.place(),
            offset: self.offset,
        });
        self.offset += len;
    }

    /// Total bytes written so far.
    pub fn bytes_written(&self) -> u64 {
        self.offset + self.buf.len() as u64
    }

    /// Finish the file and register it in the DFS.
    pub fn close(mut self) -> Result<()> {
        self.closed = true;
        let buf = std::mem::take(&mut self.buf);
        let blocks = std::mem::take(&mut self.blocks);
        self.dfs
            .finish_file(&self.path, FileKind::Text, blocks, buf, self.offset)
    }
}

/// Streaming writer for seq files; see [`Dfs::seq_writer`].
pub struct SeqWriter {
    dfs: Dfs,
    path: String,
    buf: Vec<u8>,
    blocks: Vec<Block>,
    offset: u64,
    closed: bool,
}

impl SeqWriter {
    /// Append one encoded pair.
    pub fn write<K: Codec, V: Codec>(&mut self, k: &K, v: &V) {
        debug_assert!(!self.closed);
        k.encode(&mut self.buf);
        v.encode(&mut self.buf);
        if self.buf.len() >= self.dfs.block_size {
            let data = std::mem::take(&mut self.buf);
            let len = data.len() as u64;
            self.blocks.push(Block {
                data: Bytes::from(data),
                node: self.dfs.place(),
                offset: self.offset,
            });
            self.offset += len;
        }
    }

    /// Total bytes written so far.
    pub fn bytes_written(&self) -> u64 {
        self.offset + self.buf.len() as u64
    }

    /// Finish the file and register it in the DFS.
    pub fn close(mut self) -> Result<()> {
        self.closed = true;
        let buf = std::mem::take(&mut self.buf);
        let blocks = std::mem::take(&mut self.blocks);
        self.dfs
            .finish_file(&self.path, FileKind::Seq, blocks, buf, self.offset)
    }
}

/// Decode the records of a text split into `(byte offset, line)` pairs.
pub fn text_records(split: &BlockSplit) -> Result<Vec<(u64, String)>> {
    let text = std::str::from_utf8(&split.data)
        .map_err(|e| MrError::Codec(format!("{}: invalid utf-8: {e}", split.path)))?;
    let mut out = Vec::new();
    let mut offset = split.offset;
    for line in text.split_inclusive('\n') {
        let trimmed = line.strip_suffix('\n').unwrap_or(line);
        out.push((offset, trimmed.to_string()));
        offset += line.len() as u64;
    }
    Ok(out)
}

/// Decode the records of a seq split.
pub fn seq_records<K: Codec, V: Codec>(split: &BlockSplit) -> Result<Vec<(K, V)>> {
    let mut r = ByteReader::new(&split.data);
    let mut out = Vec::new();
    while !r.is_empty() {
        let k = K::decode(&mut r)?;
        let v = V::decode(&mut r)?;
        out.push((k, v));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_roundtrip_and_blocks() {
        let dfs = Dfs::new(4, 16);
        let lines: Vec<String> = (0..20).map(|i| format!("line-{i}")).collect();
        dfs.write_text("/data/a.txt", &lines).unwrap();
        assert_eq!(dfs.read_text("/data/a.txt").unwrap(), lines);
        // Small block size forces multiple blocks.
        let splits = dfs.splits("/data/a.txt").unwrap();
        assert!(splits.len() > 1, "expected multiple blocks");
        // Splits reassemble to the same records with correct offsets.
        let mut all = Vec::new();
        for s in &splits {
            all.extend(text_records(s).unwrap());
        }
        assert_eq!(all.len(), 20);
        assert_eq!(all[0], (0, "line-0".to_string()));
        for w in all.windows(2) {
            assert!(w[0].0 < w[1].0, "offsets must increase");
        }
    }

    #[test]
    fn blocks_are_round_robin_balanced() {
        let dfs = Dfs::new(3, 16);
        let lines: Vec<String> = (0..30).map(|i| format!("record-{i:04}")).collect();
        dfs.write_text("/balanced", &lines).unwrap();
        let per_node = dfs.node_bytes();
        let max = *per_node.iter().max().unwrap();
        let min = *per_node.iter().min().unwrap();
        // Round-robin placement keeps nodes within one block of each other.
        assert!(max - min <= 32, "imbalance too large: {per_node:?}");
    }

    #[test]
    fn seq_roundtrip() {
        let dfs = Dfs::new(2, 32);
        let pairs: Vec<(u64, String)> = (0..50).map(|i| (i, format!("v{i}"))).collect();
        dfs.write_seq("/seq", &pairs).unwrap();
        let back: Vec<(u64, String)> = dfs.read_seq("/seq").unwrap();
        assert_eq!(back, pairs);
        let splits = dfs.splits("/seq").unwrap();
        assert!(splits.len() > 1);
        let mut all = Vec::new();
        for s in &splits {
            all.extend(seq_records::<u64, String>(s).unwrap());
        }
        assert_eq!(all, pairs);
    }

    #[test]
    fn directory_reads_concatenate_parts() {
        let dfs = Dfs::new(2, 1024);
        dfs.write_text("/out/part-00001", ["b"]).unwrap();
        dfs.write_text("/out/part-00000", ["a"]).unwrap();
        assert_eq!(dfs.read_text("/out").unwrap(), vec!["a", "b"]);
        assert_eq!(dfs.list("/out").len(), 2);
        assert_eq!(dfs.delete_prefix("/out"), 2);
        assert!(dfs.read_text("/out").is_err());
    }

    #[test]
    fn rename_is_atomic_replace() {
        let dfs = Dfs::new(2, 1024);
        dfs.write_text("/out/_attempt-00000-1", ["new"]).unwrap();
        dfs.write_text("/out/part-00000", ["stale"]).unwrap();
        dfs.rename("/out/_attempt-00000-1", "/out/part-00000")
            .unwrap();
        assert_eq!(dfs.read_text("/out/part-00000").unwrap(), vec!["new"]);
        assert!(!dfs.exists("/out/_attempt-00000-1"));
        assert!(matches!(
            dfs.rename("/missing", "/x"),
            Err(MrError::FileNotFound(_))
        ));
    }

    #[test]
    fn hidden_files_are_invisible_to_directory_reads() {
        let dfs = Dfs::new(2, 1024);
        dfs.write_text("/out/part-00000", ["data"]).unwrap();
        dfs.write_text("/out/_attempt-00001-0", ["partial"])
            .unwrap();
        dfs.write_text("/out/.meta", ["x"]).unwrap();
        // Directory reads and splits skip hidden files...
        assert_eq!(dfs.read_text("/out").unwrap(), vec!["data"]);
        assert_eq!(dfs.splits("/out").unwrap().len(), 1);
        // ...but explicit paths, list, and delete_prefix still see them.
        assert_eq!(
            dfs.read_text("/out/_attempt-00001-0").unwrap(),
            vec!["partial"]
        );
        assert_eq!(dfs.list("/out").len(), 3);
        assert_eq!(dfs.delete_prefix("/out"), 3);
    }

    #[test]
    fn directory_of_only_hidden_files_reads_as_missing() {
        let dfs = Dfs::new(1, 1024);
        dfs.write_text("/out/_attempt-00000-0", ["x"]).unwrap();
        assert!(matches!(
            dfs.read_text("/out"),
            Err(MrError::FileNotFound(_))
        ));
    }

    #[test]
    fn exists_delete_and_errors() {
        let dfs = Dfs::new(1, 64);
        dfs.write_text("/f", ["x"]).unwrap();
        assert!(dfs.exists("/f"));
        assert!(matches!(
            dfs.write_text("/f", ["y"]),
            Err(MrError::FileExists(_))
        ));
        dfs.delete("/f").unwrap();
        assert!(!dfs.exists("/f"));
        assert!(matches!(dfs.delete("/f"), Err(MrError::FileNotFound(_))));
        assert!(matches!(
            dfs.read_text("/missing"),
            Err(MrError::FileNotFound(_))
        ));
    }

    #[test]
    fn kind_mismatch_is_rejected() {
        let dfs = Dfs::new(1, 64);
        dfs.write_text("/t", ["x"]).unwrap();
        assert!(dfs.read_seq::<u64, u64>("/t").is_err());
        dfs.write_seq("/s", &[(1u64, 2u64)]).unwrap();
        assert!(dfs.read_text("/s").is_err());
    }

    #[test]
    fn file_len_and_len_under() {
        let dfs = Dfs::new(2, 1024);
        dfs.write_text("/d/p1", ["ab", "cd"]).unwrap(); // 6 bytes with newlines
        dfs.write_text("/d/p2", ["ef"]).unwrap(); // 3 bytes
        assert_eq!(dfs.file_len("/d/p1").unwrap(), 6);
        assert_eq!(dfs.len_under("/d"), 9);
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The canonical IEEE CRC-32 check value.
        let mut c = Crc32::new();
        c.update(b"123456789");
        assert_eq!(c.finish(), 0xCBF4_3926);
        // Incremental updates equal one-shot.
        let mut a = Crc32::new();
        a.update(b"1234");
        a.update(b"56789");
        assert_eq!(a.finish(), 0xCBF4_3926);
        assert_eq!(Crc32::new().finish(), 0);
    }

    #[test]
    fn corruption_is_detected_on_every_read_path() {
        let dfs = Dfs::new(2, 16);
        let lines: Vec<String> = (0..20).map(|i| format!("line-{i}")).collect();
        dfs.write_text("/t", &lines).unwrap();
        dfs.write_seq("/s", &[(1u64, "v".to_string())]).unwrap();
        dfs.verify("/t").unwrap();
        dfs.corrupt("/t").unwrap();
        dfs.corrupt("/s").unwrap();
        assert!(matches!(
            dfs.read_text("/t"),
            Err(MrError::ChecksumMismatch { .. })
        ));
        assert!(matches!(
            dfs.splits("/t"),
            Err(MrError::ChecksumMismatch { .. })
        ));
        assert!(matches!(
            dfs.read_seq::<u64, String>("/s"),
            Err(MrError::ChecksumMismatch { .. })
        ));
        let err = dfs.verify("/t").unwrap_err();
        match err {
            MrError::ChecksumMismatch { path, .. } => assert_eq!(path, "/t"),
            other => panic!("expected checksum mismatch, got {other}"),
        }
        // Directory reads fail too when a member part is corrupt.
        let dfs2 = Dfs::new(2, 1024);
        dfs2.write_text("/out/part-00000", ["a"]).unwrap();
        dfs2.write_text("/out/part-00001", ["b"]).unwrap();
        dfs2.corrupt("/out/part-00001").unwrap();
        assert!(matches!(
            dfs2.read_text("/out"),
            Err(MrError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn rename_carries_the_checksum() {
        let dfs = Dfs::new(2, 1024);
        dfs.write_text("/out/_attempt-00000-0", ["data"]).unwrap();
        let crc = dfs.file_crc("/out/_attempt-00000-0").unwrap();
        dfs.rename("/out/_attempt-00000-0", "/out/part-00000")
            .unwrap();
        assert_eq!(dfs.file_crc("/out/part-00000").unwrap(), crc);
        dfs.verify("/out/part-00000").unwrap();
        // Identical content ⇒ identical CRC (what lets resume fingerprints
        // survive a bit-identical stage re-run).
        dfs.write_text("/other", ["data"]).unwrap();
        assert_eq!(dfs.file_crc("/other").unwrap(), crc);
    }

    #[test]
    fn corrupt_rejects_missing_and_empty_files() {
        let dfs = Dfs::new(1, 64);
        assert!(matches!(
            dfs.corrupt("/missing"),
            Err(MrError::FileNotFound(_))
        ));
        dfs.write_text("/empty", Vec::<String>::new()).unwrap();
        assert!(dfs.corrupt("/empty").is_err());
        assert!(matches!(
            dfs.file_crc("/gone"),
            Err(MrError::FileNotFound(_))
        ));
    }

    #[test]
    fn data_files_skips_hidden() {
        let dfs = Dfs::new(1, 64);
        dfs.write_text("/out/part-00000", ["a"]).unwrap();
        dfs.write_text("/out/_SUCCESS", ["m"]).unwrap();
        dfs.write_text("/out/_attempt-00000-1", ["x"]).unwrap();
        assert_eq!(dfs.data_files("/out"), vec!["/out/part-00000".to_string()]);
        assert!(dfs.data_files("/nothing").is_empty());
        // A plain file resolves to itself.
        dfs.write_text("/single", ["y"]).unwrap();
        assert_eq!(dfs.data_files("/single"), vec!["/single".to_string()]);
    }

    #[test]
    fn empty_text_file_round_trips() {
        let dfs = Dfs::new(1, 64);
        dfs.write_text("/empty", Vec::<String>::new()).unwrap();
        assert_eq!(dfs.read_text("/empty").unwrap(), Vec::<String>::new());
        assert_eq!(dfs.splits("/empty").unwrap().len(), 0);
    }

    // ---- disk-backed store ----------------------------------------------

    #[test]
    fn disk_store_round_trips_text_seq_and_splits() {
        let dfs = Dfs::new_temp_disk(3, 16).unwrap();
        assert!(dfs.disk_root().is_some());
        let lines: Vec<String> = (0..20).map(|i| format!("line-{i}")).collect();
        dfs.write_text("/data/a.txt", &lines).unwrap();
        assert_eq!(dfs.read_text("/data/a.txt").unwrap(), lines);
        let splits = dfs.splits("/data/a.txt").unwrap();
        assert!(splits.len() > 1, "expected multiple blocks");
        let pairs: Vec<(u64, String)> = (0..50).map(|i| (i, format!("v{i}"))).collect();
        dfs.write_seq("/seq", &pairs).unwrap();
        let back: Vec<(u64, String)> = dfs.read_seq("/seq").unwrap();
        assert_eq!(back, pairs);
        assert_eq!(dfs.file_len("/seq").unwrap(), dfs.len_under("/seq"));
    }

    #[test]
    fn disk_store_is_shared_between_independent_handles() {
        // Two handles on the same root simulate the driver and a worker
        // process: a write through one is visible through the other.
        let a = Dfs::new_temp_disk(2, 1024).unwrap();
        let root = a.disk_root().unwrap().to_path_buf();
        let b = Dfs::new_disk(2, 1024, &root).unwrap();
        a.write_text("/out/part-00000", ["from-a"]).unwrap();
        assert_eq!(b.read_text("/out").unwrap(), vec!["from-a"]);
        b.write_text("/out/_attempt-00001-0", ["staged"]).unwrap();
        b.rename("/out/_attempt-00001-0", "/out/part-00001")
            .unwrap();
        assert_eq!(a.read_text("/out").unwrap(), vec!["from-a", "staged"]);
        assert_eq!(a.data_files("/out").len(), 2);
        assert_eq!(a.delete_prefix("/out"), 2);
        assert!(b.read_text("/out").is_err());
    }

    #[test]
    fn disk_store_matches_mem_semantics_for_errors_and_hidden_files() {
        let dfs = Dfs::new_temp_disk(1, 64).unwrap();
        dfs.write_text("/f", ["x"]).unwrap();
        assert!(matches!(
            dfs.write_text("/f", ["y"]),
            Err(MrError::FileExists(_))
        ));
        dfs.delete("/f").unwrap();
        assert!(matches!(dfs.delete("/f"), Err(MrError::FileNotFound(_))));
        assert!(matches!(
            dfs.read_text("/missing"),
            Err(MrError::FileNotFound(_))
        ));
        dfs.write_text("/out/part-00000", ["data"]).unwrap();
        dfs.write_text("/out/_SUCCESS", ["m"]).unwrap();
        assert_eq!(dfs.read_text("/out").unwrap(), vec!["data"]);
        assert_eq!(dfs.data_files("/out"), vec!["/out/part-00000".to_string()]);
        assert!(matches!(
            dfs.rename("/nope", "/x"),
            Err(MrError::FileNotFound(_))
        ));
        // Path traversal is rejected, not resolved.
        assert!(dfs.write_text("/../escape", ["x"]).is_err());
    }

    #[test]
    fn disk_store_detects_corruption_and_keeps_crcs_across_rename() {
        let dfs = Dfs::new_temp_disk(2, 16).unwrap();
        let lines: Vec<String> = (0..20).map(|i| format!("line-{i}")).collect();
        dfs.write_text("/t", &lines).unwrap();
        dfs.verify("/t").unwrap();
        let crc = dfs.file_crc("/t").unwrap();
        dfs.rename("/t", "/t2").unwrap();
        assert_eq!(dfs.file_crc("/t2").unwrap(), crc);
        dfs.corrupt("/t2").unwrap();
        assert!(matches!(
            dfs.read_text("/t2"),
            Err(MrError::ChecksumMismatch { .. })
        ));
        assert!(matches!(
            dfs.splits("/t2"),
            Err(MrError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn disk_container_rejects_structural_damage() {
        let dfs = Dfs::new_temp_disk(1, 1024).unwrap();
        dfs.write_text("/f", ["hello"]).unwrap();
        let real = dfs.disk_root().unwrap().join("fs/f");
        let bytes = fs::read(&real).unwrap();

        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] ^= 0xFF;
        fs::write(&real, &bad).unwrap();
        assert!(matches!(dfs.read_text("/f"), Err(MrError::Codec(_))));

        // Truncated payload (structural, caught before the CRC check).
        fs::write(&real, &bytes[..bytes.len() - 2]).unwrap();
        assert!(matches!(dfs.read_text("/f"), Err(MrError::Codec(_))));

        // Trailing garbage.
        let mut long = bytes.clone();
        long.push(0);
        fs::write(&real, &long).unwrap();
        assert!(matches!(dfs.read_text("/f"), Err(MrError::Codec(_))));

        // Restored bytes read fine again.
        fs::write(&real, &bytes).unwrap();
        assert_eq!(dfs.read_text("/f").unwrap(), vec!["hello"]);
    }

    #[test]
    fn temp_disk_root_is_removed_on_drop() {
        let root = {
            let dfs = Dfs::new_temp_disk(1, 64).unwrap();
            dfs.write_text("/f", ["x"]).unwrap();
            dfs.disk_root().unwrap().to_path_buf()
        };
        assert!(!root.exists(), "temp root should be cleaned up");
    }
}
