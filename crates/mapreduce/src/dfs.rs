//! In-memory simulation of a block-based distributed file system.
//!
//! Files are sequences of blocks; each block is placed on a simulated node in
//! round-robin order — the balanced layout the paper establishes before every
//! experiment ("we exploited the fact that Hadoop chooses the disk to write
//! the data using a Round-Robin order"). Map tasks are derived one-per-block,
//! so input balance across nodes is reproduced faithfully.
//!
//! Two file kinds exist, mirroring Hadoop text files and `SequenceFile`s:
//!
//! * **text** — newline-separated lines; blocks are cut at line boundaries so
//!   a split never straddles blocks. Records are `(byte offset, line)`.
//! * **seq** — back-to-back [`Codec`]-encoded `(key, value)` pairs; blocks
//!   are cut at pair boundaries.
//!
//! Reduce outputs follow the Hadoop naming convention `dir/part-NNNNN`; read
//! helpers accept either a single file path or a directory and concatenate
//! parts in name order.
//!
//! Every file carries a CRC-32 of its contents, computed when the file is
//! finished and verified on every read (`read_text`, `read_seq`, `splits`)
//! — the simulated equivalent of HDFS block checksums. A mismatch surfaces
//! as [`MrError::ChecksumMismatch`]; corrupt data is never returned.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::RwLock;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::codec::{read_varint, write_varint, ByteReader, Codec};
use crate::error::{MrError, Result};
use crate::faults::FaultPlan;

/// What a file contains, for sanity-checking readers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Newline-separated UTF-8 text.
    Text,
    /// Codec-encoded `(key, value)` pairs.
    Seq,
}

#[derive(Debug, Clone)]
struct Block {
    data: Bytes,
    node: usize,
    /// Byte offset of this block within the file.
    offset: u64,
}

#[derive(Debug, Clone)]
struct DfsFile {
    kind: FileKind,
    blocks: Vec<Block>,
    len: u64,
    /// CRC-32 (IEEE) of the file's bytes, fixed at write time.
    crc: u32,
}

impl DfsFile {
    fn data_crc(&self) -> u32 {
        let mut crc = Crc32::new();
        for b in &self.blocks {
            crc.update(&b.data);
        }
        crc.finish()
    }

    /// Verify stored bytes against the write-time CRC.
    fn check(&self, path: &str) -> Result<()> {
        let found = self.data_crc();
        if found != self.crc {
            return Err(MrError::ChecksumMismatch {
                path: path.to_string(),
                expected: self.crc,
                found,
            });
        }
        Ok(())
    }
}

/// Incremental CRC-32 (IEEE 802.3 polynomial, reflected), the checksum HDFS
/// uses per block. Bitwise — no table — since files here are small and the
/// check runs once per read.
pub(crate) struct Crc32(u32);

impl Crc32 {
    pub(crate) fn new() -> Self {
        Crc32(0xFFFF_FFFF)
    }

    pub(crate) fn update(&mut self, data: &[u8]) {
        let mut crc = self.0;
        for &byte in data {
            crc ^= u32::from(byte);
            for _ in 0..8 {
                let mask = (crc & 1).wrapping_neg();
                crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
            }
        }
        self.0 = crc;
    }

    pub(crate) fn finish(self) -> u32 {
        !self.0
    }
}

#[derive(Default)]
struct DfsInner {
    files: BTreeMap<String, DfsFile>,
}

/// Where a [`Dfs`] keeps its files.
enum Store {
    /// The original in-process store: one map behind a lock.
    Mem(RwLock<DfsInner>),
    /// Disk-backed: every DFS file is a real container file under a root
    /// directory, so independent *processes* opening the same root see the
    /// same file system (the process execution backend's storage plane).
    Disk(DiskStore),
}

/// Container-file magic: identifies (and versions) the on-disk format.
const CONTAINER_MAGIC: &[u8; 8] = b"MRDFSv1\0";

/// Monotonic discriminator for temp files and temp roots in this process.
static DISK_SEQ: AtomicU64 = AtomicU64::new(0);

/// Map an OS error on a DFS path to the closest classified [`MrError`].
/// `StorageFull` (ENOSPC) and `Interrupted` (EINTR) from the real disk are
/// *transient* — the retry path scavenges and re-issues — while anything
/// else unrecognized stays a deterministic [`MrError::Codec`] failure.
fn io_fail(path: &str, e: std::io::Error) -> MrError {
    match e.kind() {
        std::io::ErrorKind::NotFound => MrError::FileNotFound(path.to_string()),
        std::io::ErrorKind::AlreadyExists => MrError::FileExists(path.to_string()),
        std::io::ErrorKind::StorageFull => MrError::StorageFull {
            path: path.to_string(),
        },
        std::io::ErrorKind::Interrupted => MrError::StorageIo {
            path: path.to_string(),
            op: "io".to_string(),
        },
        _ => MrError::Codec(format!("dfs io failure on {path}: {e}")),
    }
}

/// Fsync a file or directory by path — the directory flavor is what makes
/// a preceding `rename(2)` itself durable across power loss.
fn fsync_path(p: &Path) -> std::io::Result<()> {
    fs::File::open(p)?.sync_all()
}

/// Seeded per-operation storage-fault state for the disk store, installed
/// from a [`FaultPlan`]'s `enospc=` / `eio=` / `torn=` keys and shared by
/// every clone of the handle — the operation counter and the ENOSPC byte
/// budget are global to the installing process. Worker processes open
/// their own handles and never install fault state: injection is a
/// driver-side instrument.
struct StorageFaults {
    seed: u64,
    p_eio: f64,
    p_torn: f64,
    enospc_after_bytes: Option<u64>,
    enospc_heals: bool,
    /// Payload bytes written through this handle family since the last
    /// healing scavenge.
    bytes_written: AtomicU64,
    /// Monotonic operation index: every draw is independent.
    ops: AtomicU64,
    /// Faults actually injected, so tests can assert the plan fired.
    injected: AtomicU64,
}

impl StorageFaults {
    /// Seed one operation's RNG: FNV-1a over `(plan seed, op index,
    /// op kind, path)`, the same mixing discipline as
    /// `FaultPlan::attempt_seed`.
    fn op_rng(&self, op: &str, path: &str) -> StdRng {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let idx = self.ops.fetch_add(1, Ordering::Relaxed);
        let mut h = FNV_OFFSET ^ self.seed;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(FNV_PRIME);
            }
        };
        eat(&idx.to_le_bytes());
        eat(op.as_bytes());
        eat(path.as_bytes());
        StdRng::seed_from_u64(h)
    }

    /// Draw the per-operation EIO fault for `op` on `path`.
    fn eio(&self, op: &str, path: &str) -> bool {
        if self.p_eio <= 0.0 {
            return false;
        }
        let hit = self.op_rng(op, path).random_bool(self.p_eio);
        if hit {
            self.injected.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// Charge `len` payload bytes against the ENOSPC budget; true if this
    /// write must fail with [`MrError::StorageFull`].
    fn charge(&self, len: u64) -> bool {
        let Some(budget) = self.enospc_after_bytes else {
            return false;
        };
        let before = self.bytes_written.fetch_add(len, Ordering::Relaxed);
        if before + len > budget {
            self.injected.fetch_add(1, Ordering::Relaxed);
            return true;
        }
        false
    }

    /// Decide whether a write of `total` payload bytes is torn; if so,
    /// return how many bytes survive (strictly fewer than `total`, so the
    /// CRC wall is guaranteed to notice).
    fn torn_keep(&self, path: &str, total: u64) -> Option<u64> {
        if self.p_torn <= 0.0 || total == 0 {
            return None;
        }
        let mut rng = self.op_rng("torn", path);
        if !rng.random_bool(self.p_torn) {
            return None;
        }
        self.injected.fetch_add(1, Ordering::Relaxed);
        Some(rng.random_range(0..total))
    }

    /// A scavenger pass freed space: reset the byte budget when the plan
    /// says ENOSPC heals.
    fn heal(&self) {
        if self.enospc_heals {
            self.bytes_written.store(0, Ordering::Relaxed);
        }
    }
}

/// The disk-backed store: DFS files live under `<root>/fs/`, atomic-create
/// temporaries under `<root>/tmp/`, and worker spill runs (owned by the
/// process backend, not by this module) under `<root>/shuffle/`.
struct DiskStore {
    root: PathBuf,
    /// Remove the whole root when the last handle drops (temp roots only).
    cleanup: bool,
}

impl Drop for DiskStore {
    fn drop(&mut self) {
        if self.cleanup {
            let _ = fs::remove_dir_all(&self.root);
        }
    }
}

impl DiskStore {
    fn fs_root(&self) -> PathBuf {
        self.root.join("fs")
    }

    /// Real path for a DFS path, rejecting traversal and empty components.
    fn target_path(&self, path: &str) -> Result<PathBuf> {
        let rel = path.trim_start_matches('/');
        if rel.is_empty() {
            return Err(MrError::InvalidConfig(format!("invalid DFS path {path:?}")));
        }
        let mut out = self.fs_root();
        for comp in rel.split('/') {
            if comp.is_empty() || comp == "." || comp == ".." {
                return Err(MrError::InvalidConfig(format!(
                    "invalid DFS path component in {path:?}"
                )));
            }
            out.push(comp);
        }
        Ok(out)
    }

    fn load(&self, path: &str) -> Result<DfsFile> {
        let bytes = fs::read(self.target_path(path)?).map_err(|e| io_fail(path, e))?;
        decode_container(path, &bytes)
    }

    /// Write a container file. Without `overwrite` the create is atomic and
    /// exclusive (temp write + hard link), preserving the in-memory store's
    /// create-or-`FileExists` semantics even across racing processes; with
    /// it, an atomic `rename` replaces whatever is there.
    ///
    /// Commit ordering with `durable` on — **write → sync → rename →
    /// dir-sync**, the classic crash-consistent publish:
    ///
    /// 1. write the whole container to a fresh temp file under `tmp/`;
    /// 2. `fsync` the temp file, so the payload is on stable storage
    ///    before any visible name can point at it;
    /// 3. `rename(2)` / `link(2)` the temp into place — atomic, so a
    ///    reader sees the old state or the whole new file, never a prefix;
    /// 4. `fsync` the target's *parent directory*, so the rename itself
    ///    survives power loss — without this the name can be lost even
    ///    though the data blocks were synced.
    ///
    /// A crash between (1) and (3) leaves only an orphaned temp file (the
    /// scavenger's prey); a crash after (3) before (4) can lose the name
    /// but never publishes a torn file. With `durable` off, steps (2) and
    /// (4) are skipped: process kills stay safe (the page cache survives
    /// the process), power loss does not — that is the bench opt-out
    /// ([`crate::ClusterConfig::durable_commits`]).
    fn save(&self, path: &str, file: &DfsFile, overwrite: bool, durable: bool) -> Result<()> {
        let target = self.target_path(path)?;
        if let Some(parent) = target.parent() {
            fs::create_dir_all(parent).map_err(|e| io_fail(path, e))?;
        }
        let tmp = self.root.join("tmp").join(format!(
            "{}-{}",
            std::process::id(),
            DISK_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        fs::write(&tmp, encode_container(file)).map_err(|e| io_fail(path, e))?;
        if durable {
            fsync_path(&tmp).map_err(|e| io_fail(path, e))?;
        }
        if overwrite {
            fs::rename(&tmp, &target).map_err(|e| io_fail(path, e))?;
        } else {
            let linked = fs::hard_link(&tmp, &target).map_err(|e| io_fail(path, e));
            let _ = fs::remove_file(&tmp);
            linked?;
        }
        if durable {
            if let Some(parent) = target.parent() {
                fsync_path(parent).map_err(|e| io_fail(path, e))?;
            }
        }
        Ok(())
    }

    /// Every DFS path present on disk, name-ordered.
    fn all_keys(&self) -> Vec<String> {
        fn walk(dir: &Path, root: &Path, out: &mut Vec<String>) {
            let Ok(entries) = fs::read_dir(dir) else {
                return;
            };
            for entry in entries.flatten() {
                let p = entry.path();
                if p.is_dir() {
                    walk(&p, root, out);
                } else if let Ok(rel) = p.strip_prefix(root) {
                    if let Some(rel) = rel.to_str() {
                        out.push(format!("/{rel}"));
                    }
                }
            }
        }
        let mut out = Vec::new();
        walk(&self.fs_root(), &self.fs_root(), &mut out);
        out.sort();
        out
    }
}

/// Serialize a [`DfsFile`] into the container format: magic, then a
/// codec-encoded header (kind, CRC, length, block table), then the raw
/// block payloads back to back.
fn encode_container(file: &DfsFile) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 + file.len as usize);
    out.extend_from_slice(CONTAINER_MAGIC);
    let kind: u8 = match file.kind {
        FileKind::Text => 0,
        FileKind::Seq => 1,
    };
    kind.encode(&mut out);
    file.crc.encode(&mut out);
    file.len.encode(&mut out);
    write_varint(file.blocks.len() as u64, &mut out);
    for b in &file.blocks {
        write_varint(b.data.len() as u64, &mut out);
        write_varint(b.node as u64, &mut out);
    }
    for b in &file.blocks {
        out.extend_from_slice(&b.data);
    }
    out
}

/// Parse a container file. Structural damage (bad magic, truncated header,
/// short payload) is a codec error; *payload* damage is intentionally left
/// for the CRC check on read, exactly like the in-memory store.
fn decode_container(path: &str, bytes: &[u8]) -> Result<DfsFile> {
    let corrupt = |why: &str| MrError::Codec(format!("corrupt DFS container {path}: {why}"));
    if bytes.len() < CONTAINER_MAGIC.len() || &bytes[..CONTAINER_MAGIC.len()] != CONTAINER_MAGIC {
        return Err(corrupt("bad magic"));
    }
    let mut r = ByteReader::new(&bytes[CONTAINER_MAGIC.len()..]);
    let kind = match u8::decode(&mut r)? {
        0 => FileKind::Text,
        1 => FileKind::Seq,
        k => return Err(corrupt(&format!("unknown file kind {k}"))),
    };
    let crc = u32::decode(&mut r)?;
    let len = u64::decode(&mut r)?;
    let n_blocks = read_varint(&mut r)?;
    // Bound the table by what the input can hold (2 bytes minimum per
    // entry) before any allocation — same discipline as the codec layer.
    if n_blocks > (r.remaining() as u64) / 2 {
        return Err(corrupt("block table longer than file"));
    }
    let mut table = Vec::with_capacity(n_blocks as usize);
    for _ in 0..n_blocks {
        let blen = read_varint(&mut r)?;
        let node = read_varint(&mut r)?;
        table.push((blen, node as usize));
    }
    let mut blocks = Vec::with_capacity(table.len());
    let mut offset = 0u64;
    for (blen, node) in table {
        let blen = usize::try_from(blen).map_err(|_| corrupt("block length overflow"))?;
        if blen > r.remaining() {
            return Err(corrupt("payload shorter than block table"));
        }
        let data = r.take(blen)?;
        blocks.push(Block {
            data: Bytes::from(data.to_vec()),
            node,
            offset,
        });
        offset += blen as u64;
    }
    if !r.is_empty() {
        return Err(corrupt("trailing bytes after payload"));
    }
    Ok(DfsFile {
        kind,
        blocks,
        len,
        crc,
    })
}

/// Handle to the simulated distributed file system. Cloning is cheap and
/// shares the underlying store.
#[derive(Clone)]
pub struct Dfs {
    store: Arc<Store>,
    block_size: usize,
    nodes: usize,
    next_node: Arc<AtomicUsize>,
    /// Follow the write→sync→rename→dir-sync commit discipline on the disk
    /// store (see [`DiskStore::save`]); no effect in-memory. Copied into
    /// clones, so set it before sharing the handle.
    durable: bool,
    /// Injected storage faults (disk store only); shared across clones so
    /// the operation counter and ENOSPC budget are process-global.
    faults: Option<Arc<StorageFaults>>,
}

/// One input split: a single block of a single file, pinned to a node.
#[derive(Debug, Clone)]
pub struct BlockSplit {
    /// File the split came from.
    pub path: String,
    /// Node holding the block.
    pub node: usize,
    /// Byte offset of the block within the file.
    pub offset: u64,
    /// Raw block contents.
    pub data: Bytes,
    /// File kind, for the record reader.
    pub kind: FileKind,
}

impl Dfs {
    /// Create a DFS spanning `nodes` simulated nodes with the given block
    /// size in bytes (the paper uses 128 MB; tests use much smaller blocks to
    /// exercise multi-block logic).
    pub fn new(nodes: usize, block_size: usize) -> Self {
        assert!(nodes > 0, "DFS needs at least one node");
        assert!(block_size >= 16, "block size too small");
        Dfs {
            store: Arc::new(Store::Mem(RwLock::new(DfsInner::default()))),
            block_size,
            nodes,
            next_node: Arc::new(AtomicUsize::new(0)),
            durable: true,
            faults: None,
        }
    }

    /// Open (or create) a disk-backed DFS rooted at `root`. Independent
    /// process handles opening the same root share the file system — this
    /// is the storage plane of the process execution backend. The root is
    /// left in place when the handle drops.
    ///
    /// Block *placement* counters are per-handle, so round-robin node
    /// assignment restarts in every process; placement affects locality
    /// accounting only, never file bytes, so backend parity is unaffected.
    pub fn new_disk(nodes: usize, block_size: usize, root: impl AsRef<Path>) -> Result<Self> {
        assert!(nodes > 0, "DFS needs at least one node");
        assert!(block_size >= 16, "block size too small");
        let root = root.as_ref().to_path_buf();
        for sub in ["fs", "tmp", "shuffle"] {
            fs::create_dir_all(root.join(sub))
                .map_err(|e| io_fail(&root.join(sub).to_string_lossy(), e))?;
        }
        Ok(Dfs {
            store: Arc::new(Store::Disk(DiskStore {
                root,
                cleanup: false,
            })),
            block_size,
            nodes,
            next_node: Arc::new(AtomicUsize::new(0)),
            durable: true,
            faults: None,
        })
    }

    /// Disk-backed DFS under a fresh unique directory in the system temp
    /// dir, removed when the last handle drops. Used when the process
    /// backend runs without an explicit `--dfs-root`.
    pub fn new_temp_disk(nodes: usize, block_size: usize) -> Result<Self> {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.subsec_nanos())
            .unwrap_or(0);
        let root = std::env::temp_dir().join(format!(
            "mrdfs-{}-{nanos}-{}",
            std::process::id(),
            DISK_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let dfs = Self::new_disk(nodes, block_size, &root)?;
        if let Store::Disk(_) = &*dfs.store {
            // Rebuild the Arc with cleanup enabled (no other handle exists
            // yet, so this cannot race).
            return Ok(Dfs {
                store: Arc::new(Store::Disk(DiskStore {
                    root,
                    cleanup: true,
                })),
                ..dfs
            });
        }
        Ok(dfs)
    }

    /// Root directory when disk-backed, `None` for the in-memory store.
    pub fn disk_root(&self) -> Option<&Path> {
        match &*self.store {
            Store::Mem(_) => None,
            Store::Disk(d) => Some(&d.root),
        }
    }

    /// Toggle the durable-commit discipline (see [`DiskStore::save`] and
    /// [`crate::ClusterConfig::durable_commits`]). Applies to this handle
    /// and every clone taken afterwards.
    pub fn set_durable(&mut self, durable: bool) {
        self.durable = durable;
    }

    /// True if disk writes follow the write→sync→rename→dir-sync commit
    /// discipline.
    pub fn durable(&self) -> bool {
        self.durable
    }

    /// Install the storage-fault keys of `plan` (`enospc=` / `eio=` /
    /// `torn=`) on this handle. A no-op for the in-memory store (no disk
    /// to fail) or a plan without storage keys. Fault state is shared with
    /// every clone taken afterwards; worker processes open fresh handles
    /// and never install it — storage injection is a driver-side
    /// instrument.
    pub fn install_storage_faults(&mut self, plan: &FaultPlan) {
        if !plan.has_storage_faults() || self.disk_root().is_none() {
            return;
        }
        self.faults = Some(Arc::new(StorageFaults {
            seed: plan.seed,
            p_eio: plan.p_disk_eio,
            p_torn: plan.p_torn_write,
            enospc_after_bytes: plan.enospc_after_bytes,
            enospc_heals: plan.enospc_heals,
            bytes_written: AtomicU64::new(0),
            ops: AtomicU64::new(0),
            injected: AtomicU64::new(0),
        }));
    }

    /// Number of storage faults injected so far through this handle family
    /// (tests assert an active plan really fired).
    pub fn storage_fault_injections(&self) -> u64 {
        self.faults
            .as_ref()
            .map_or(0, |f| f.injected.load(Ordering::Relaxed))
    }

    /// Sweep storage orphans under a disk root: `tmp/<pid>-<seq>` container
    /// temporaries and `shuffle/<job>-<pid>-<seq>/` spill directories (the
    /// `*.run` files inside) whose owning process is dead — the debris a
    /// SIGKILLed driver or a quarantined worker leaves behind. Live
    /// processes' files are never touched, so concurrent clusters sharing
    /// a root are safe. Returns the number of files removed. Also lets an
    /// injected healing ENOSPC budget reset ("the disk has room again"):
    /// the engine runs this pass at job start and on every
    /// [`MrError::StorageFull`] before the retry.
    pub fn scavenge_orphans(&self) -> usize {
        let mut removed = 0;
        if let Store::Disk(d) = &*self.store {
            removed += sweep_dead_owners(&d.root.join("tmp"), false);
            removed += sweep_dead_owners(&d.root.join("shuffle"), true);
        }
        if let Some(f) = &self.faults {
            f.heal();
        }
        removed
    }

    /// Block size in bytes.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Number of simulated nodes.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    fn place(&self) -> usize {
        self.next_node.fetch_add(1, Ordering::Relaxed) % self.nodes
    }

    /// Fetch one file's metadata and bytes, whichever store holds them.
    fn load(&self, path: &str) -> Result<DfsFile> {
        match &*self.store {
            Store::Mem(inner) => inner
                .read()
                .files
                .get(path)
                .cloned()
                .ok_or_else(|| MrError::FileNotFound(path.to_string())),
            Store::Disk(d) => {
                if let Some(f) = &self.faults {
                    if f.eio("read", path) {
                        return Err(MrError::StorageIo {
                            path: path.to_string(),
                            op: "read".to_string(),
                        });
                    }
                }
                d.load(path)
            }
        }
    }

    /// Every file path in the store, name-ordered.
    fn all_keys(&self) -> Vec<String> {
        match &*self.store {
            Store::Mem(inner) => inner.read().files.keys().cloned().collect(),
            Store::Disk(d) => d.all_keys(),
        }
    }

    fn insert(&self, path: &str, file: DfsFile, overwrite: bool) -> Result<()> {
        match &*self.store {
            Store::Mem(inner) => {
                let mut inner = inner.write();
                if !overwrite && inner.files.contains_key(path) {
                    return Err(MrError::FileExists(path.to_string()));
                }
                inner.files.insert(path.to_string(), file);
                Ok(())
            }
            Store::Disk(d) => {
                if let Some(f) = &self.faults {
                    if f.eio("write", path) {
                        return Err(MrError::StorageIo {
                            path: path.to_string(),
                            op: "write".to_string(),
                        });
                    }
                    if f.charge(file.len) {
                        // ENOSPC is transient-after-cleanup: sweep dead
                        // orphans *now* (which also lets a healing budget
                        // reset), so the attempt retry writes into a disk
                        // with room again.
                        self.scavenge_orphans();
                        return Err(MrError::StorageFull {
                            path: path.to_string(),
                        });
                    }
                    if let Some(keep) = f.torn_keep(path, file.len) {
                        // The torn write *reports success*: the damage only
                        // surfaces at read time, through the CRC wall.
                        return d.save(path, &torn_copy(&file, keep), overwrite, self.durable);
                    }
                }
                let res = d.save(path, &file, overwrite, self.durable);
                if matches!(res, Err(MrError::StorageFull { .. })) {
                    // A *real* full disk gets the same treatment as an
                    // injected one: free dead debris before the retry.
                    self.scavenge_orphans();
                }
                res
            }
        }
    }

    /// True if `path` names an existing file.
    pub fn exists(&self, path: &str) -> bool {
        match &*self.store {
            Store::Mem(inner) => inner.read().files.contains_key(path),
            Store::Disk(d) => d.target_path(path).map(|p| p.is_file()).unwrap_or(false),
        }
    }

    /// Atomically rename `from` to `to`, replacing any existing `to`. This
    /// is the commit step of the engine's output-commit protocol (Hadoop's
    /// `OutputCommitter` renaming an attempt path into place): in-memory the
    /// removal of `from` and the appearance of `to` happen under one write
    /// lock; on disk it is a single `rename(2)` — either way no reader ever
    /// observes a half-committed output.
    pub fn rename(&self, from: &str, to: &str) -> Result<()> {
        match &*self.store {
            Store::Mem(inner) => {
                let mut inner = inner.write();
                let file = inner
                    .files
                    .remove(from)
                    .ok_or_else(|| MrError::FileNotFound(from.to_string()))?;
                inner.files.insert(to.to_string(), file);
                Ok(())
            }
            Store::Disk(d) => {
                if let Some(f) = &self.faults {
                    if f.eio("rename", from) {
                        return Err(MrError::StorageIo {
                            path: from.to_string(),
                            op: "rename".to_string(),
                        });
                    }
                }
                let src = d.target_path(from)?;
                let dst = d.target_path(to)?;
                if let Some(parent) = dst.parent() {
                    fs::create_dir_all(parent).map_err(|e| io_fail(to, e))?;
                }
                fs::rename(&src, &dst).map_err(|e| io_fail(from, e))?;
                // The commit step of the output protocol: with durability
                // on, the rename must itself reach stable storage before
                // the caller treats the part as committed.
                if self.durable {
                    if let Some(parent) = dst.parent() {
                        fsync_path(parent).map_err(|e| io_fail(to, e))?;
                    }
                }
                Ok(())
            }
        }
    }

    /// Delete one file. Missing files are an error.
    pub fn delete(&self, path: &str) -> Result<()> {
        match &*self.store {
            Store::Mem(inner) => inner
                .write()
                .files
                .remove(path)
                .map(|_| ())
                .ok_or_else(|| MrError::FileNotFound(path.to_string())),
            Store::Disk(d) => fs::remove_file(d.target_path(path)?).map_err(|e| io_fail(path, e)),
        }
    }

    /// Delete every file under `prefix` (treated as a directory). Returns the
    /// number of files removed.
    pub fn delete_prefix(&self, prefix: &str) -> usize {
        let doomed = self.list(prefix);
        for k in &doomed {
            let _ = self.delete(k);
        }
        doomed.len()
    }

    /// All file paths under `prefix` (or the file itself), name-ordered.
    pub fn list(&self, prefix: &str) -> Vec<String> {
        let dir = dir_prefix(prefix);
        self.all_keys()
            .into_iter()
            .filter(|k| k.as_str() == prefix || k.starts_with(&dir))
            .collect()
    }

    /// Length of a single file in bytes.
    pub fn file_len(&self, path: &str) -> Result<u64> {
        self.load(path).map(|f| f.len)
    }

    /// CRC-32 recorded when `path` was written. This is the *stored*
    /// checksum (what commit manifests record); it does not compare against
    /// the data — use [`Dfs::verify`] to check the bytes against it.
    pub fn file_crc(&self, path: &str) -> Result<u32> {
        self.load(path).map(|f| f.crc)
    }

    /// Re-read `path`'s bytes and compare against the stored CRC, exactly
    /// as every read does. Returns [`MrError::ChecksumMismatch`] on
    /// corruption.
    pub fn verify(&self, path: &str) -> Result<()> {
        self.load(path)?.check(path)
    }

    /// Flip one bit of `path`'s first non-empty block *without* updating
    /// the stored CRC — fault injection's corrupt-a-committed-file knob.
    /// Empty files have no byte to flip and are rejected.
    pub fn corrupt(&self, path: &str) -> Result<()> {
        let mut file = self.load(path)?;
        let block = file
            .blocks
            .iter_mut()
            .find(|b| !b.data.is_empty())
            .ok_or_else(|| MrError::InvalidConfig(format!("cannot corrupt empty file {path}")))?;
        let mut data = block.data.to_vec();
        data[0] ^= 0x01;
        block.data = Bytes::from(data);
        self.insert(path, file, true)
    }

    /// Non-hidden file paths under `prefix` (or the file itself),
    /// name-ordered: the files a directory read would concatenate. Empty
    /// when nothing is there.
    pub fn data_files(&self, prefix: &str) -> Vec<String> {
        self.list(prefix)
            .into_iter()
            .filter(|p| !is_hidden(p))
            .collect()
    }

    /// Total bytes stored under `prefix` (file or directory).
    pub fn len_under(&self, prefix: &str) -> u64 {
        self.list(prefix)
            .iter()
            .filter_map(|p| self.load(p).ok())
            .map(|f| f.len)
            .sum()
    }

    /// Bytes resident on each node, for balance inspection.
    pub fn node_bytes(&self) -> Vec<u64> {
        let mut out = vec![0u64; self.nodes];
        for path in self.all_keys() {
            if let Ok(file) = self.load(&path) {
                for b in &file.blocks {
                    out[b.node] += b.data.len() as u64;
                }
            }
        }
        out
    }

    // ---- text files ------------------------------------------------------

    /// Write a text file from lines. Blocks are cut at line boundaries once
    /// the accumulated block reaches the block size.
    pub fn write_text<I, S>(&self, path: &str, lines: I) -> Result<()>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut w = self.text_writer(path)?;
        for line in lines {
            w.write_line(line.as_ref());
        }
        w.close()
    }

    /// Streaming text writer (used by reduce tasks for text outputs).
    pub fn text_writer(&self, path: &str) -> Result<TextWriter> {
        if self.exists(path) {
            return Err(MrError::FileExists(path.to_string()));
        }
        Ok(TextWriter {
            dfs: self.clone(),
            path: path.to_string(),
            buf: Vec::with_capacity(self.block_size.min(1 << 20)),
            blocks: Vec::new(),
            offset: 0,
            closed: false,
        })
    }

    /// Read all lines of a text file or of every `part-*` under a directory.
    pub fn read_text(&self, path: &str) -> Result<Vec<String>> {
        let paths = self.resolve(path)?;
        let mut out = Vec::new();
        for p in &paths {
            let file = self.load(p)?;
            if file.kind != FileKind::Text {
                return Err(MrError::Codec(format!("{p} is not a text file")));
            }
            file.check(p)?;
            for b in &file.blocks {
                let text = std::str::from_utf8(&b.data)
                    .map_err(|e| MrError::Codec(format!("{p}: invalid utf-8: {e}")))?;
                out.extend(text.lines().map(str::to_string));
            }
        }
        Ok(out)
    }

    // ---- seq files -------------------------------------------------------

    /// Write a sequence file of encoded `(key, value)` pairs.
    pub fn write_seq<K: Codec, V: Codec>(&self, path: &str, pairs: &[(K, V)]) -> Result<()> {
        let mut w = self.seq_writer(path)?;
        for (k, v) in pairs {
            w.write(k, v);
        }
        w.close()
    }

    /// Streaming sequence-file writer.
    pub fn seq_writer(&self, path: &str) -> Result<SeqWriter> {
        if self.exists(path) {
            return Err(MrError::FileExists(path.to_string()));
        }
        Ok(SeqWriter {
            dfs: self.clone(),
            path: path.to_string(),
            buf: Vec::with_capacity(self.block_size.min(1 << 20)),
            blocks: Vec::new(),
            offset: 0,
            closed: false,
        })
    }

    /// Read every `(key, value)` pair of a seq file or directory of parts.
    pub fn read_seq<K: Codec, V: Codec>(&self, path: &str) -> Result<Vec<(K, V)>> {
        let paths = self.resolve(path)?;
        let mut out = Vec::new();
        for p in &paths {
            let file = self.load(p)?;
            if file.kind != FileKind::Seq {
                return Err(MrError::Codec(format!("{p} is not a seq file")));
            }
            file.check(p)?;
            for b in &file.blocks {
                let mut r = ByteReader::new(&b.data);
                while !r.is_empty() {
                    let k = K::decode(&mut r)?;
                    let v = V::decode(&mut r)?;
                    out.push((k, v));
                }
            }
        }
        Ok(out)
    }

    // ---- splits ----------------------------------------------------------

    /// One split per block for a file or directory, for the map phase.
    pub fn splits(&self, path: &str) -> Result<Vec<BlockSplit>> {
        let paths = self.resolve(path)?;
        let mut out = Vec::new();
        for p in &paths {
            let file = self.load(p)?;
            file.check(p)?;
            for b in &file.blocks {
                out.push(BlockSplit {
                    path: p.clone(),
                    node: b.node,
                    offset: b.offset,
                    data: b.data.clone(),
                    kind: file.kind,
                });
            }
        }
        Ok(out)
    }

    /// Resolve a path to itself (if a file) or the sorted list of files under
    /// it (if a directory). Directory resolution skips hidden files —
    /// basenames starting with `_` or `.` — matching Hadoop's input-path
    /// filter, so uncommitted `_attempt-*` outputs are never read as data.
    fn resolve(&self, path: &str) -> Result<Vec<String>> {
        if self.exists(path) {
            return Ok(vec![path.to_string()]);
        }
        let listed: Vec<String> = self
            .list(path)
            .into_iter()
            .filter(|p| !is_hidden(p))
            .collect();
        if listed.is_empty() {
            return Err(MrError::FileNotFound(path.to_string()));
        }
        Ok(listed)
    }

    fn finish_file(
        &self,
        path: &str,
        kind: FileKind,
        mut blocks: Vec<Block>,
        buf: Vec<u8>,
        offset: u64,
    ) -> Result<()> {
        let len = offset + buf.len() as u64;
        if !buf.is_empty() {
            blocks.push(Block {
                data: Bytes::from(buf),
                node: self.place(),
                offset,
            });
        }
        let mut crc = Crc32::new();
        for b in &blocks {
            crc.update(&b.data);
        }
        let crc = crc.finish();
        self.insert(
            path,
            DfsFile {
                kind,
                blocks,
                len,
                crc,
            },
            false,
        )
    }
}

/// The torn image of `file`: a *structurally valid* container holding only
/// the first `keep` payload bytes, with the original CRC and length — what
/// a crash between write and sync leaves once the filesystem journal
/// settles. Reads decode fine and then fail the CRC wall as a classified
/// [`MrError::ChecksumMismatch`] (never a permanent `Codec` error), which
/// resume heals by re-running the producing stage.
fn torn_copy(file: &DfsFile, keep: u64) -> DfsFile {
    let mut blocks = Vec::new();
    let mut left = keep;
    for b in &file.blocks {
        if left == 0 {
            break;
        }
        if (b.data.len() as u64) <= left {
            left -= b.data.len() as u64;
            blocks.push(b.clone());
        } else {
            blocks.push(Block {
                data: Bytes::from(b.data[..left as usize].to_vec()),
                node: b.node,
                offset: b.offset,
            });
            left = 0;
        }
    }
    DfsFile {
        kind: file.kind,
        blocks,
        len: file.len,
        crc: file.crc,
    }
}

/// True when `pid` names a live process. Checked through `/proc`; on a
/// system without procfs everything is presumed alive — never sweep what
/// cannot be verified dead.
fn pid_is_live(pid: u32) -> bool {
    if pid == std::process::id() {
        return true;
    }
    let proc_root = Path::new("/proc");
    if !proc_root.is_dir() {
        return true;
    }
    proc_root.join(pid.to_string()).exists()
}

/// Owner pid embedded in an orphan candidate's name: `<pid>-<seq>` for
/// temp files, `<job>-<pid>-<seq>` for shuffle spill directories.
fn owner_pid(name: &str, is_spill_dir: bool) -> Option<u32> {
    if is_spill_dir {
        let mut it = name.rsplit('-');
        let _seq = it.next()?;
        it.next()?.parse().ok()
    } else {
        name.split('-').next()?.parse().ok()
    }
}

/// Files under `dir`, recursively.
fn count_files(dir: &Path) -> usize {
    let Ok(entries) = fs::read_dir(dir) else {
        return 0;
    };
    entries
        .flatten()
        .map(|e| {
            let p = e.path();
            if p.is_dir() {
                count_files(&p)
            } else {
                1
            }
        })
        .sum()
}

/// Remove every entry of `dir` whose embedded owner pid is dead. Returns
/// the number of *files* freed (for spill directories, the run files
/// inside). Entries without a parseable pid are left alone.
fn sweep_dead_owners(dir: &Path, spill_dirs: bool) -> usize {
    let Ok(entries) = fs::read_dir(dir) else {
        return 0;
    };
    let mut removed = 0;
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(pid) = owner_pid(name, spill_dirs) else {
            continue;
        };
        if pid_is_live(pid) {
            continue;
        }
        let p = entry.path();
        if spill_dirs && p.is_dir() {
            let files = count_files(&p);
            if fs::remove_dir_all(&p).is_ok() {
                removed += files;
            }
        } else if p.is_file() && fs::remove_file(&p).is_ok() {
            removed += 1;
        }
    }
    removed
}

/// True for paths whose basename marks them hidden (`_attempt-*`, `_logs`,
/// `_SUCCESS`, dotfiles) — excluded from directory reads and splits.
pub fn is_hidden(path: &str) -> bool {
    path.rsplit('/')
        .next()
        .is_some_and(|base| base.starts_with('_') || base.starts_with('.'))
}

fn dir_prefix(prefix: &str) -> String {
    let mut d = prefix.to_string();
    if !d.ends_with('/') {
        d.push('/');
    }
    d
}

/// Streaming writer for text files; see [`Dfs::text_writer`].
pub struct TextWriter {
    dfs: Dfs,
    path: String,
    buf: Vec<u8>,
    blocks: Vec<Block>,
    offset: u64,
    closed: bool,
}

impl TextWriter {
    /// Append one line (a trailing newline is added).
    pub fn write_line(&mut self, line: &str) {
        debug_assert!(!self.closed);
        self.buf.extend_from_slice(line.as_bytes());
        self.buf.push(b'\n');
        if self.buf.len() >= self.dfs.block_size {
            self.cut_block();
        }
    }

    fn cut_block(&mut self) {
        let data = std::mem::take(&mut self.buf);
        let len = data.len() as u64;
        self.blocks.push(Block {
            data: Bytes::from(data),
            node: self.dfs.place(),
            offset: self.offset,
        });
        self.offset += len;
    }

    /// Total bytes written so far.
    pub fn bytes_written(&self) -> u64 {
        self.offset + self.buf.len() as u64
    }

    /// Finish the file and register it in the DFS.
    pub fn close(mut self) -> Result<()> {
        self.closed = true;
        let buf = std::mem::take(&mut self.buf);
        let blocks = std::mem::take(&mut self.blocks);
        self.dfs
            .finish_file(&self.path, FileKind::Text, blocks, buf, self.offset)
    }
}

/// Streaming writer for seq files; see [`Dfs::seq_writer`].
pub struct SeqWriter {
    dfs: Dfs,
    path: String,
    buf: Vec<u8>,
    blocks: Vec<Block>,
    offset: u64,
    closed: bool,
}

impl SeqWriter {
    /// Append one encoded pair.
    pub fn write<K: Codec, V: Codec>(&mut self, k: &K, v: &V) {
        debug_assert!(!self.closed);
        k.encode(&mut self.buf);
        v.encode(&mut self.buf);
        if self.buf.len() >= self.dfs.block_size {
            let data = std::mem::take(&mut self.buf);
            let len = data.len() as u64;
            self.blocks.push(Block {
                data: Bytes::from(data),
                node: self.dfs.place(),
                offset: self.offset,
            });
            self.offset += len;
        }
    }

    /// Total bytes written so far.
    pub fn bytes_written(&self) -> u64 {
        self.offset + self.buf.len() as u64
    }

    /// Finish the file and register it in the DFS.
    pub fn close(mut self) -> Result<()> {
        self.closed = true;
        let buf = std::mem::take(&mut self.buf);
        let blocks = std::mem::take(&mut self.blocks);
        self.dfs
            .finish_file(&self.path, FileKind::Seq, blocks, buf, self.offset)
    }
}

/// Decode the records of a text split into `(byte offset, line)` pairs.
pub fn text_records(split: &BlockSplit) -> Result<Vec<(u64, String)>> {
    let text = std::str::from_utf8(&split.data)
        .map_err(|e| MrError::Codec(format!("{}: invalid utf-8: {e}", split.path)))?;
    let mut out = Vec::new();
    let mut offset = split.offset;
    for line in text.split_inclusive('\n') {
        let trimmed = line.strip_suffix('\n').unwrap_or(line);
        out.push((offset, trimmed.to_string()));
        offset += line.len() as u64;
    }
    Ok(out)
}

/// Decode the records of a seq split.
pub fn seq_records<K: Codec, V: Codec>(split: &BlockSplit) -> Result<Vec<(K, V)>> {
    let mut r = ByteReader::new(&split.data);
    let mut out = Vec::new();
    while !r.is_empty() {
        let k = K::decode(&mut r)?;
        let v = V::decode(&mut r)?;
        out.push((k, v));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_roundtrip_and_blocks() {
        let dfs = Dfs::new(4, 16);
        let lines: Vec<String> = (0..20).map(|i| format!("line-{i}")).collect();
        dfs.write_text("/data/a.txt", &lines).unwrap();
        assert_eq!(dfs.read_text("/data/a.txt").unwrap(), lines);
        // Small block size forces multiple blocks.
        let splits = dfs.splits("/data/a.txt").unwrap();
        assert!(splits.len() > 1, "expected multiple blocks");
        // Splits reassemble to the same records with correct offsets.
        let mut all = Vec::new();
        for s in &splits {
            all.extend(text_records(s).unwrap());
        }
        assert_eq!(all.len(), 20);
        assert_eq!(all[0], (0, "line-0".to_string()));
        for w in all.windows(2) {
            assert!(w[0].0 < w[1].0, "offsets must increase");
        }
    }

    #[test]
    fn blocks_are_round_robin_balanced() {
        let dfs = Dfs::new(3, 16);
        let lines: Vec<String> = (0..30).map(|i| format!("record-{i:04}")).collect();
        dfs.write_text("/balanced", &lines).unwrap();
        let per_node = dfs.node_bytes();
        let max = *per_node.iter().max().unwrap();
        let min = *per_node.iter().min().unwrap();
        // Round-robin placement keeps nodes within one block of each other.
        assert!(max - min <= 32, "imbalance too large: {per_node:?}");
    }

    #[test]
    fn seq_roundtrip() {
        let dfs = Dfs::new(2, 32);
        let pairs: Vec<(u64, String)> = (0..50).map(|i| (i, format!("v{i}"))).collect();
        dfs.write_seq("/seq", &pairs).unwrap();
        let back: Vec<(u64, String)> = dfs.read_seq("/seq").unwrap();
        assert_eq!(back, pairs);
        let splits = dfs.splits("/seq").unwrap();
        assert!(splits.len() > 1);
        let mut all = Vec::new();
        for s in &splits {
            all.extend(seq_records::<u64, String>(s).unwrap());
        }
        assert_eq!(all, pairs);
    }

    #[test]
    fn directory_reads_concatenate_parts() {
        let dfs = Dfs::new(2, 1024);
        dfs.write_text("/out/part-00001", ["b"]).unwrap();
        dfs.write_text("/out/part-00000", ["a"]).unwrap();
        assert_eq!(dfs.read_text("/out").unwrap(), vec!["a", "b"]);
        assert_eq!(dfs.list("/out").len(), 2);
        assert_eq!(dfs.delete_prefix("/out"), 2);
        assert!(dfs.read_text("/out").is_err());
    }

    #[test]
    fn rename_is_atomic_replace() {
        let dfs = Dfs::new(2, 1024);
        dfs.write_text("/out/_attempt-00000-1", ["new"]).unwrap();
        dfs.write_text("/out/part-00000", ["stale"]).unwrap();
        dfs.rename("/out/_attempt-00000-1", "/out/part-00000")
            .unwrap();
        assert_eq!(dfs.read_text("/out/part-00000").unwrap(), vec!["new"]);
        assert!(!dfs.exists("/out/_attempt-00000-1"));
        assert!(matches!(
            dfs.rename("/missing", "/x"),
            Err(MrError::FileNotFound(_))
        ));
    }

    #[test]
    fn hidden_files_are_invisible_to_directory_reads() {
        let dfs = Dfs::new(2, 1024);
        dfs.write_text("/out/part-00000", ["data"]).unwrap();
        dfs.write_text("/out/_attempt-00001-0", ["partial"])
            .unwrap();
        dfs.write_text("/out/.meta", ["x"]).unwrap();
        // Directory reads and splits skip hidden files...
        assert_eq!(dfs.read_text("/out").unwrap(), vec!["data"]);
        assert_eq!(dfs.splits("/out").unwrap().len(), 1);
        // ...but explicit paths, list, and delete_prefix still see them.
        assert_eq!(
            dfs.read_text("/out/_attempt-00001-0").unwrap(),
            vec!["partial"]
        );
        assert_eq!(dfs.list("/out").len(), 3);
        assert_eq!(dfs.delete_prefix("/out"), 3);
    }

    #[test]
    fn directory_of_only_hidden_files_reads_as_missing() {
        let dfs = Dfs::new(1, 1024);
        dfs.write_text("/out/_attempt-00000-0", ["x"]).unwrap();
        assert!(matches!(
            dfs.read_text("/out"),
            Err(MrError::FileNotFound(_))
        ));
    }

    #[test]
    fn exists_delete_and_errors() {
        let dfs = Dfs::new(1, 64);
        dfs.write_text("/f", ["x"]).unwrap();
        assert!(dfs.exists("/f"));
        assert!(matches!(
            dfs.write_text("/f", ["y"]),
            Err(MrError::FileExists(_))
        ));
        dfs.delete("/f").unwrap();
        assert!(!dfs.exists("/f"));
        assert!(matches!(dfs.delete("/f"), Err(MrError::FileNotFound(_))));
        assert!(matches!(
            dfs.read_text("/missing"),
            Err(MrError::FileNotFound(_))
        ));
    }

    #[test]
    fn kind_mismatch_is_rejected() {
        let dfs = Dfs::new(1, 64);
        dfs.write_text("/t", ["x"]).unwrap();
        assert!(dfs.read_seq::<u64, u64>("/t").is_err());
        dfs.write_seq("/s", &[(1u64, 2u64)]).unwrap();
        assert!(dfs.read_text("/s").is_err());
    }

    #[test]
    fn file_len_and_len_under() {
        let dfs = Dfs::new(2, 1024);
        dfs.write_text("/d/p1", ["ab", "cd"]).unwrap(); // 6 bytes with newlines
        dfs.write_text("/d/p2", ["ef"]).unwrap(); // 3 bytes
        assert_eq!(dfs.file_len("/d/p1").unwrap(), 6);
        assert_eq!(dfs.len_under("/d"), 9);
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The canonical IEEE CRC-32 check value.
        let mut c = Crc32::new();
        c.update(b"123456789");
        assert_eq!(c.finish(), 0xCBF4_3926);
        // Incremental updates equal one-shot.
        let mut a = Crc32::new();
        a.update(b"1234");
        a.update(b"56789");
        assert_eq!(a.finish(), 0xCBF4_3926);
        assert_eq!(Crc32::new().finish(), 0);
    }

    #[test]
    fn corruption_is_detected_on_every_read_path() {
        let dfs = Dfs::new(2, 16);
        let lines: Vec<String> = (0..20).map(|i| format!("line-{i}")).collect();
        dfs.write_text("/t", &lines).unwrap();
        dfs.write_seq("/s", &[(1u64, "v".to_string())]).unwrap();
        dfs.verify("/t").unwrap();
        dfs.corrupt("/t").unwrap();
        dfs.corrupt("/s").unwrap();
        assert!(matches!(
            dfs.read_text("/t"),
            Err(MrError::ChecksumMismatch { .. })
        ));
        assert!(matches!(
            dfs.splits("/t"),
            Err(MrError::ChecksumMismatch { .. })
        ));
        assert!(matches!(
            dfs.read_seq::<u64, String>("/s"),
            Err(MrError::ChecksumMismatch { .. })
        ));
        let err = dfs.verify("/t").unwrap_err();
        match err {
            MrError::ChecksumMismatch { path, .. } => assert_eq!(path, "/t"),
            other => panic!("expected checksum mismatch, got {other}"),
        }
        // Directory reads fail too when a member part is corrupt.
        let dfs2 = Dfs::new(2, 1024);
        dfs2.write_text("/out/part-00000", ["a"]).unwrap();
        dfs2.write_text("/out/part-00001", ["b"]).unwrap();
        dfs2.corrupt("/out/part-00001").unwrap();
        assert!(matches!(
            dfs2.read_text("/out"),
            Err(MrError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn rename_carries_the_checksum() {
        let dfs = Dfs::new(2, 1024);
        dfs.write_text("/out/_attempt-00000-0", ["data"]).unwrap();
        let crc = dfs.file_crc("/out/_attempt-00000-0").unwrap();
        dfs.rename("/out/_attempt-00000-0", "/out/part-00000")
            .unwrap();
        assert_eq!(dfs.file_crc("/out/part-00000").unwrap(), crc);
        dfs.verify("/out/part-00000").unwrap();
        // Identical content ⇒ identical CRC (what lets resume fingerprints
        // survive a bit-identical stage re-run).
        dfs.write_text("/other", ["data"]).unwrap();
        assert_eq!(dfs.file_crc("/other").unwrap(), crc);
    }

    #[test]
    fn corrupt_rejects_missing_and_empty_files() {
        let dfs = Dfs::new(1, 64);
        assert!(matches!(
            dfs.corrupt("/missing"),
            Err(MrError::FileNotFound(_))
        ));
        dfs.write_text("/empty", Vec::<String>::new()).unwrap();
        assert!(dfs.corrupt("/empty").is_err());
        assert!(matches!(
            dfs.file_crc("/gone"),
            Err(MrError::FileNotFound(_))
        ));
    }

    #[test]
    fn data_files_skips_hidden() {
        let dfs = Dfs::new(1, 64);
        dfs.write_text("/out/part-00000", ["a"]).unwrap();
        dfs.write_text("/out/_SUCCESS", ["m"]).unwrap();
        dfs.write_text("/out/_attempt-00000-1", ["x"]).unwrap();
        assert_eq!(dfs.data_files("/out"), vec!["/out/part-00000".to_string()]);
        assert!(dfs.data_files("/nothing").is_empty());
        // A plain file resolves to itself.
        dfs.write_text("/single", ["y"]).unwrap();
        assert_eq!(dfs.data_files("/single"), vec!["/single".to_string()]);
    }

    #[test]
    fn empty_text_file_round_trips() {
        let dfs = Dfs::new(1, 64);
        dfs.write_text("/empty", Vec::<String>::new()).unwrap();
        assert_eq!(dfs.read_text("/empty").unwrap(), Vec::<String>::new());
        assert_eq!(dfs.splits("/empty").unwrap().len(), 0);
    }

    // ---- disk-backed store ----------------------------------------------

    #[test]
    fn disk_store_round_trips_text_seq_and_splits() {
        let dfs = Dfs::new_temp_disk(3, 16).unwrap();
        assert!(dfs.disk_root().is_some());
        let lines: Vec<String> = (0..20).map(|i| format!("line-{i}")).collect();
        dfs.write_text("/data/a.txt", &lines).unwrap();
        assert_eq!(dfs.read_text("/data/a.txt").unwrap(), lines);
        let splits = dfs.splits("/data/a.txt").unwrap();
        assert!(splits.len() > 1, "expected multiple blocks");
        let pairs: Vec<(u64, String)> = (0..50).map(|i| (i, format!("v{i}"))).collect();
        dfs.write_seq("/seq", &pairs).unwrap();
        let back: Vec<(u64, String)> = dfs.read_seq("/seq").unwrap();
        assert_eq!(back, pairs);
        assert_eq!(dfs.file_len("/seq").unwrap(), dfs.len_under("/seq"));
    }

    #[test]
    fn disk_store_is_shared_between_independent_handles() {
        // Two handles on the same root simulate the driver and a worker
        // process: a write through one is visible through the other.
        let a = Dfs::new_temp_disk(2, 1024).unwrap();
        let root = a.disk_root().unwrap().to_path_buf();
        let b = Dfs::new_disk(2, 1024, &root).unwrap();
        a.write_text("/out/part-00000", ["from-a"]).unwrap();
        assert_eq!(b.read_text("/out").unwrap(), vec!["from-a"]);
        b.write_text("/out/_attempt-00001-0", ["staged"]).unwrap();
        b.rename("/out/_attempt-00001-0", "/out/part-00001")
            .unwrap();
        assert_eq!(a.read_text("/out").unwrap(), vec!["from-a", "staged"]);
        assert_eq!(a.data_files("/out").len(), 2);
        assert_eq!(a.delete_prefix("/out"), 2);
        assert!(b.read_text("/out").is_err());
    }

    #[test]
    fn disk_store_matches_mem_semantics_for_errors_and_hidden_files() {
        let dfs = Dfs::new_temp_disk(1, 64).unwrap();
        dfs.write_text("/f", ["x"]).unwrap();
        assert!(matches!(
            dfs.write_text("/f", ["y"]),
            Err(MrError::FileExists(_))
        ));
        dfs.delete("/f").unwrap();
        assert!(matches!(dfs.delete("/f"), Err(MrError::FileNotFound(_))));
        assert!(matches!(
            dfs.read_text("/missing"),
            Err(MrError::FileNotFound(_))
        ));
        dfs.write_text("/out/part-00000", ["data"]).unwrap();
        dfs.write_text("/out/_SUCCESS", ["m"]).unwrap();
        assert_eq!(dfs.read_text("/out").unwrap(), vec!["data"]);
        assert_eq!(dfs.data_files("/out"), vec!["/out/part-00000".to_string()]);
        assert!(matches!(
            dfs.rename("/nope", "/x"),
            Err(MrError::FileNotFound(_))
        ));
        // Path traversal is rejected, not resolved.
        assert!(dfs.write_text("/../escape", ["x"]).is_err());
    }

    #[test]
    fn disk_store_detects_corruption_and_keeps_crcs_across_rename() {
        let dfs = Dfs::new_temp_disk(2, 16).unwrap();
        let lines: Vec<String> = (0..20).map(|i| format!("line-{i}")).collect();
        dfs.write_text("/t", &lines).unwrap();
        dfs.verify("/t").unwrap();
        let crc = dfs.file_crc("/t").unwrap();
        dfs.rename("/t", "/t2").unwrap();
        assert_eq!(dfs.file_crc("/t2").unwrap(), crc);
        dfs.corrupt("/t2").unwrap();
        assert!(matches!(
            dfs.read_text("/t2"),
            Err(MrError::ChecksumMismatch { .. })
        ));
        assert!(matches!(
            dfs.splits("/t2"),
            Err(MrError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn disk_container_rejects_structural_damage() {
        let dfs = Dfs::new_temp_disk(1, 1024).unwrap();
        dfs.write_text("/f", ["hello"]).unwrap();
        let real = dfs.disk_root().unwrap().join("fs/f");
        let bytes = fs::read(&real).unwrap();

        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] ^= 0xFF;
        fs::write(&real, &bad).unwrap();
        assert!(matches!(dfs.read_text("/f"), Err(MrError::Codec(_))));

        // Truncated payload (structural, caught before the CRC check).
        fs::write(&real, &bytes[..bytes.len() - 2]).unwrap();
        assert!(matches!(dfs.read_text("/f"), Err(MrError::Codec(_))));

        // Trailing garbage.
        let mut long = bytes.clone();
        long.push(0);
        fs::write(&real, &long).unwrap();
        assert!(matches!(dfs.read_text("/f"), Err(MrError::Codec(_))));

        // Restored bytes read fine again.
        fs::write(&real, &bytes).unwrap();
        assert_eq!(dfs.read_text("/f").unwrap(), vec!["hello"]);
    }

    // ---- storage faults & durability ------------------------------------

    fn plan(spec: &str) -> FaultPlan {
        FaultPlan::parse(spec).unwrap()
    }

    #[test]
    fn mem_store_ignores_storage_faults() {
        let mut dfs = Dfs::new(1, 64);
        dfs.install_storage_faults(&plan("seed=1,eio=1.0,torn=1.0,enospc=0"));
        dfs.write_text("/f", ["x"]).unwrap();
        assert_eq!(dfs.read_text("/f").unwrap(), vec!["x"]);
        assert_eq!(dfs.storage_fault_injections(), 0);
    }

    #[test]
    fn injected_eio_is_transient_and_seeded() {
        let mut dfs = Dfs::new_temp_disk(1, 1024).unwrap();
        dfs.install_storage_faults(&plan("seed=1,eio=1.0"));
        let err = dfs.write_text("/f", ["x"]).unwrap_err();
        assert!(matches!(err, MrError::StorageIo { .. }), "{err}");
        assert!(err.is_transient());
        assert!(dfs.storage_fault_injections() > 0);
        // At p=0.4 some operations must survive and some must fail —
        // the draws are per-op, not sticky.
        let mut dfs = Dfs::new_temp_disk(1, 1024).unwrap();
        dfs.install_storage_faults(&plan("seed=2,eio=0.4"));
        let (mut ok, mut fail) = (0, 0);
        for i in 0..60 {
            match dfs.write_text(&format!("/f{i}"), ["x"]) {
                Ok(()) => ok += 1,
                Err(MrError::StorageIo { .. }) => fail += 1,
                Err(other) => panic!("unexpected error {other}"),
            }
        }
        assert!(ok > 5, "some writes survive: {ok}");
        assert!(fail > 5, "some writes fail: {fail}");
        // Reads draw too.
        let mut dfs = Dfs::new_temp_disk(1, 1024).unwrap();
        dfs.write_text("/r", ["x"]).unwrap();
        dfs.install_storage_faults(&plan("seed=3,eio=1.0"));
        let err = dfs.read_text("/r").unwrap_err();
        assert!(matches!(
            err,
            MrError::StorageIo { ref op, .. } if op == "read"
        ));
    }

    #[test]
    fn torn_write_reports_success_and_fails_the_crc_wall() {
        let mut dfs = Dfs::new_temp_disk(2, 16).unwrap();
        dfs.install_storage_faults(&plan("seed=5,torn=1.0"));
        let lines: Vec<String> = (0..40).map(|i| format!("line-{i}")).collect();
        // The write itself succeeds — that is the point of a torn write.
        dfs.write_text("/t", &lines).unwrap();
        assert!(dfs.storage_fault_injections() > 0);
        // The damage is structurally clean (decodes) but checksum-dead:
        // a classified ChecksumMismatch, never a permanent Codec error.
        let err = dfs.read_text("/t").unwrap_err();
        assert!(matches!(err, MrError::ChecksumMismatch { .. }), "{err}");
        let err = dfs.verify("/t").unwrap_err();
        assert!(matches!(err, MrError::ChecksumMismatch { .. }), "{err}");
        // The producing stage re-runs (delete + rewrite) and heals it.
        let mut clean = Dfs::new_disk(2, 16, dfs.disk_root().unwrap()).unwrap();
        clean.set_durable(false);
        clean.delete("/t").unwrap();
        clean.write_text("/t", &lines).unwrap();
        assert_eq!(clean.read_text("/t").unwrap(), lines);
    }

    #[test]
    fn enospc_budget_fires_and_heals_on_scavenge() {
        let mut dfs = Dfs::new_temp_disk(1, 1024).unwrap();
        dfs.install_storage_faults(&plan("seed=7,enospc=64+heal"));
        dfs.write_text("/a", ["small"]).unwrap();
        // The budget runs out mid-stream; the error is transient.
        let big: Vec<String> = (0..40).map(|i| format!("record-{i:04}")).collect();
        let err = dfs.write_text("/b", &big).unwrap_err();
        assert!(matches!(err, MrError::StorageFull { .. }), "{err}");
        assert!(err.is_transient());
        assert!(err.is_storage_full());
        // The failing write ran an immediate scavenger pass, which let the
        // healing budget reset: the (small) retry fits again.
        dfs.write_text("/c", ["x"]).unwrap();
        assert_eq!(dfs.read_text("/c").unwrap(), vec!["x"]);
        // ...but a write past the refreshed budget still fails.
        assert!(dfs.write_text("/d", &big).is_err());
        assert!(dfs.storage_fault_injections() >= 2);

        // Without `+heal`, neither the automatic pass nor an explicit one
        // resets the budget: once dry, always dry.
        let mut dfs = Dfs::new_temp_disk(1, 1024).unwrap();
        dfs.install_storage_faults(&plan("seed=7,enospc=4"));
        assert!(dfs.write_text("/a", &big).is_err());
        assert!(dfs.write_text("/b", ["y"]).is_err());
        dfs.scavenge_orphans();
        assert!(dfs.write_text("/c", ["y"]).is_err(), "budget must stay dry");
    }

    #[test]
    fn scavenger_sweeps_dead_owners_and_spares_live_ones() {
        let dfs = Dfs::new_temp_disk(1, 1024).unwrap();
        let root = dfs.disk_root().unwrap().to_path_buf();
        // A pid far above any real pid_max: parseable, definitely dead.
        let dead = 4_000_000_000u32;
        let live = std::process::id();
        fs::write(root.join("tmp").join(format!("{dead}-0")), b"orphan").unwrap();
        fs::write(root.join("tmp").join(format!("{live}-7")), b"inflight").unwrap();
        let dead_spill = root.join("shuffle").join(format!("job-{dead}-3"));
        fs::create_dir_all(&dead_spill).unwrap();
        fs::write(dead_spill.join("map-00000-a0-p000-s000.run"), b"r1").unwrap();
        fs::write(dead_spill.join("map-00001-a0-p000-s000.run"), b"r2").unwrap();
        let live_spill = root.join("shuffle").join(format!("job-{live}-4"));
        fs::create_dir_all(&live_spill).unwrap();
        fs::write(live_spill.join("map-00002-a0-p000-s000.run"), b"keep").unwrap();
        // A name without a parseable pid is left alone.
        fs::create_dir_all(root.join("shuffle").join("odd")).unwrap();

        let removed = dfs.scavenge_orphans();
        assert_eq!(removed, 3, "one tmp file + two run files");
        assert!(!root.join("tmp").join(format!("{dead}-0")).exists());
        assert!(root.join("tmp").join(format!("{live}-7")).exists());
        assert!(!dead_spill.exists());
        assert!(live_spill.join("map-00002-a0-p000-s000.run").exists());
        assert!(root.join("shuffle").join("odd").exists());
        // Nothing left to sweep.
        assert_eq!(dfs.scavenge_orphans(), 0);
    }

    #[test]
    fn durable_and_relaxed_commits_read_back_identically() {
        for durable in [true, false] {
            let mut dfs = Dfs::new_temp_disk(2, 16).unwrap();
            dfs.set_durable(durable);
            assert_eq!(dfs.durable(), durable);
            let lines: Vec<String> = (0..20).map(|i| format!("line-{i}")).collect();
            dfs.write_text("/out/_attempt-00000-0", &lines).unwrap();
            dfs.rename("/out/_attempt-00000-0", "/out/part-00000")
                .unwrap();
            assert_eq!(dfs.read_text("/out").unwrap(), lines);
            dfs.verify("/out/part-00000").unwrap();
        }
    }

    #[test]
    fn temp_disk_root_is_removed_on_drop() {
        let root = {
            let dfs = Dfs::new_temp_disk(1, 64).unwrap();
            dfs.write_text("/f", ["x"]).unwrap();
            dfs.disk_root().unwrap().to_path_buf()
        };
        assert!(!root.exists(), "temp root should be cleaned up");
    }
}
