//! Wall-clock task supervision for the real execution backends.
//!
//! The simulated timeline already survives stragglers and failures —
//! speculation and retry backoff are charged to *sim* time. But the
//! [`crate::backend::ShardedBackend`] and process backends execute on the
//! actual host clock, where a worker that hangs (SIGSTOP, infinite loop, a
//! never-flushed frame) blocks the driver forever and no amount of
//! simulated-time machinery notices. This module is the driver-side answer:
//! a [`Supervisor`] owns one monitor thread that watches every in-flight
//! task attempt and fires an expiry callback when either
//!
//! * the attempt's **deadline** passes (`task_timeout_secs` of wall time
//!   since the attempt started), or
//! * the attempt's **heartbeat window** passes without progress (the
//!   process protocol interleaves heartbeat frames with task execution;
//!   each one [`Activity::touch`]es the watch).
//!
//! The callback kills the worker (SIGKILL the child process, or trip the
//! sharded backend's [`CancelToken`]); the resulting transport error flows
//! through the existing classified-retry machinery as a transient
//! `NodeLost`, so recovery — not this module — decides what happens next.
//! Supervision never touches simulated time or committed bytes: it only
//! ever converts "stuck forever" into "failed, retryable".

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Why a watch expired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExpireReason {
    /// The per-task wall-clock deadline passed.
    Deadline,
    /// No heartbeat/progress was recorded for longer than the window.
    Heartbeat,
}

impl ExpireReason {
    /// Stable name used in trace event details.
    pub fn as_str(self) -> &'static str {
        match self {
            ExpireReason::Deadline => "deadline",
            ExpireReason::Heartbeat => "heartbeat",
        }
    }
}

/// Progress handle for one watched attempt: heartbeat arrivals (or any
/// other sign of life) call [`Activity::touch`] to reset the heartbeat
/// window. Cheap to clone and safe to touch from any thread.
#[derive(Clone)]
pub struct Activity {
    epoch: Instant,
    cell: Arc<AtomicU64>,
}

impl Activity {
    fn new(epoch: Instant) -> Self {
        let cell = Arc::new(AtomicU64::new(epoch.elapsed().as_millis() as u64));
        Activity { epoch, cell }
    }

    /// Record a sign of life now.
    pub fn touch(&self) {
        self.cell
            .store(self.epoch.elapsed().as_millis() as u64, Ordering::Relaxed);
    }

    fn stale_for(&self, now: Instant) -> Duration {
        let now_ms = now.duration_since(self.epoch).as_millis() as u64;
        Duration::from_millis(now_ms.saturating_sub(self.cell.load(Ordering::Relaxed)))
    }
}

type ExpireFn = Box<dyn FnOnce(ExpireReason) + Send>;

struct WatchState {
    id: u64,
    started: Instant,
    deadline: Option<Duration>,
    heartbeat_window: Option<Duration>,
    activity: Activity,
    on_expire: Option<ExpireFn>,
}

impl WatchState {
    fn expiry(&self, now: Instant) -> Option<ExpireReason> {
        if let Some(d) = self.deadline {
            if now.duration_since(self.started) > d {
                return Some(ExpireReason::Deadline);
            }
        }
        if let Some(w) = self.heartbeat_window {
            if self.activity.stale_for(now) > w {
                return Some(ExpireReason::Heartbeat);
            }
        }
        None
    }
}

struct Inner {
    watches: Mutex<WatchTable>,
    wake: Condvar,
}

#[derive(Default)]
struct WatchTable {
    entries: Vec<WatchState>,
    next_id: u64,
    stop: bool,
}

/// The driver-side monitor: one background thread scanning every
/// registered watch at a fixed tick. Dropping the supervisor stops the
/// thread; dropping a [`WatchGuard`] deregisters its watch (the normal
/// end of a healthy attempt).
pub struct Supervisor {
    inner: Arc<Inner>,
    epoch: Instant,
    monitor: Option<std::thread::JoinHandle<()>>,
}

impl Supervisor {
    /// Start a supervisor whose monitor thread scans at `tick` (clamped
    /// to [10ms, 250ms] so expiry latency stays small without busy
    /// spinning).
    pub fn new(tick: Duration) -> Self {
        let tick = tick.clamp(Duration::from_millis(10), Duration::from_millis(250));
        let inner = Arc::new(Inner {
            watches: Mutex::new(WatchTable::default()),
            wake: Condvar::new(),
        });
        let monitor_inner = Arc::clone(&inner);
        let monitor = std::thread::Builder::new()
            .name("mr-supervisor".into())
            .spawn(move || monitor_loop(&monitor_inner, tick))
            .expect("spawn supervisor thread");
        Supervisor {
            inner,
            epoch: Instant::now(),
            monitor: Some(monitor),
        }
    }

    /// Register one attempt. `on_expire` runs at most once, on the
    /// monitor thread, outside the watch lock; it must be fast and must
    /// not block on the supervised work (kill a child, trip a token,
    /// bump counters).
    pub fn watch(
        &self,
        deadline: Option<Duration>,
        heartbeat_window: Option<Duration>,
        on_expire: impl FnOnce(ExpireReason) + Send + 'static,
    ) -> WatchGuard {
        let activity = Activity::new(self.epoch);
        let mut table = lock_table(&self.inner.watches);
        let id = table.next_id;
        table.next_id += 1;
        table.entries.push(WatchState {
            id,
            started: Instant::now(),
            deadline,
            heartbeat_window,
            activity: activity.clone(),
            on_expire: Some(Box::new(on_expire)),
        });
        WatchGuard {
            inner: Arc::clone(&self.inner),
            id,
            activity,
        }
    }
}

impl Drop for Supervisor {
    fn drop(&mut self) {
        lock_table(&self.inner.watches).stop = true;
        self.inner.wake.notify_all();
        if let Some(handle) = self.monitor.take() {
            let _ = handle.join();
        }
    }
}

/// Keeps one watch alive; dropping it deregisters the watch, so an
/// attempt that finishes (however it finishes) can no longer expire.
pub struct WatchGuard {
    inner: Arc<Inner>,
    id: u64,
    activity: Activity,
}

impl WatchGuard {
    /// The progress handle for this watch.
    pub fn activity(&self) -> Activity {
        self.activity.clone()
    }
}

impl Drop for WatchGuard {
    fn drop(&mut self) {
        let mut table = lock_table(&self.inner.watches);
        table.entries.retain(|w| w.id != self.id);
    }
}

fn lock_table(m: &Mutex<WatchTable>) -> std::sync::MutexGuard<'_, WatchTable> {
    // A panic inside an expiry callback must not wedge every later lock.
    m.lock().unwrap_or_else(|e| e.into_inner())
}

fn monitor_loop(inner: &Inner, tick: Duration) {
    let mut table = lock_table(&inner.watches);
    loop {
        if table.stop {
            return;
        }
        let now = Instant::now();
        let mut fired: Vec<(ExpireFn, ExpireReason)> = Vec::new();
        for w in &mut table.entries {
            if w.on_expire.is_some() {
                if let Some(reason) = w.expiry(now) {
                    fired.push((w.on_expire.take().expect("checked"), reason));
                }
            }
        }
        if !fired.is_empty() {
            // Run callbacks outside the lock: they may kill children or
            // take other locks, and new watches must stay registrable.
            drop(table);
            for (f, reason) in fired {
                f(reason);
            }
            table = lock_table(&inner.watches);
            continue;
        }
        let (next, _) = inner
            .wake
            .wait_timeout(table, tick)
            .unwrap_or_else(|e| e.into_inner());
        table = next;
    }
}

/// Cooperative cancellation for the sharded backend: worker threads check
/// the token at task boundaries and spill sends, and bail out when the
/// supervisor trips it. Scoped threads cannot be killed, so this is the
/// strongest "abandon" the sharded executor supports — the job fails fast
/// with a classified timeout instead of hanging the driver.
#[derive(Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, untripped token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Trip the token: all holders observe cancellation from now on.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// Has the token been tripped?
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    #[test]
    fn deadline_expiry_fires_exactly_once() {
        let sup = Supervisor::new(Duration::from_millis(10));
        let (tx, rx) = mpsc::channel();
        let _watch = sup.watch(Some(Duration::from_millis(30)), None, move |reason| {
            tx.send(reason).unwrap();
        });
        let reason = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(reason, ExpireReason::Deadline);
        // The callback is FnOnce and taken on fire; nothing arrives again.
        assert!(rx.recv_timeout(Duration::from_millis(200)).is_err());
    }

    #[test]
    fn touch_keeps_a_heartbeat_watch_alive_and_starvation_kills_it() {
        let sup = Supervisor::new(Duration::from_millis(10));
        let (tx, rx) = mpsc::channel();
        let watch = sup.watch(None, Some(Duration::from_millis(80)), move |reason| {
            tx.send(reason).unwrap();
        });
        let activity = watch.activity();
        // Touch often enough to stay inside the window…
        for _ in 0..5 {
            std::thread::sleep(Duration::from_millis(20));
            activity.touch();
        }
        assert!(rx.try_recv().is_err(), "healthy heartbeats must not expire");
        // …then go silent and expire.
        let reason = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(reason, ExpireReason::Heartbeat);
    }

    #[test]
    fn dropping_the_guard_deregisters_before_expiry() {
        let sup = Supervisor::new(Duration::from_millis(10));
        let (tx, rx) = mpsc::channel::<ExpireReason>();
        let watch = sup.watch(Some(Duration::from_millis(60)), None, move |reason| {
            let _ = tx.send(reason);
        });
        drop(watch);
        assert!(
            rx.recv_timeout(Duration::from_millis(250)).is_err(),
            "deregistered watch fired anyway"
        );
    }

    #[test]
    fn cancel_token_trips_for_all_clones() {
        let token = CancelToken::new();
        let clone = token.clone();
        assert!(!clone.is_cancelled());
        token.cancel();
        assert!(clone.is_cancelled());
    }
}
