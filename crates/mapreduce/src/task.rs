//! Task-side context and the output-collector abstraction.

use crate::cache::Cache;
use crate::counters::{Counter, Counters};
use crate::dfs::Dfs;
use crate::error::Result;
use crate::memory::MemoryGauge;
use crate::trace::{Histogram, Histograms};

/// Which phase a task belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// A map task.
    Map,
    /// A reduce task.
    Reduce,
}

/// Per-task context handed to map/reduce functions, mirroring Hadoop's
/// `Mapper.Context` / `Reducer.Context`.
pub struct TaskContext {
    /// Phase of the running task.
    pub phase: Phase,
    /// Task index within its phase.
    pub task_id: usize,
    /// Simulated node executing the task.
    pub node: usize,
    /// Number of reduce tasks in the job (Hadoop's `getNumReduceTasks`).
    pub num_reducers: usize,
    /// Path of the input file the current record came from. The paper's
    /// stage-3 BRJ mapper "can differentiate between the two types of inputs
    /// by looking at the input file name" — this is that file name. Empty
    /// for reduce tasks.
    pub input_path: String,
    /// Zero-based execution attempt of this task (> 0 after retries).
    pub attempt: usize,
    counters: Counters,
    histograms: Histograms,
    memory: MemoryGauge,
    cache: Cache,
    dfs: Dfs,
}

impl TaskContext {
    /// Construct a context (engine-internal, public for tests and for
    /// driving tasks manually).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        phase: Phase,
        task_id: usize,
        node: usize,
        num_reducers: usize,
        counters: Counters,
        memory: MemoryGauge,
        cache: Cache,
        dfs: Dfs,
    ) -> Self {
        TaskContext {
            phase,
            task_id,
            node,
            num_reducers,
            input_path: String::new(),
            attempt: 0,
            counters,
            histograms: Histograms::new(),
            memory,
            cache,
            dfs,
        }
    }

    /// Fetch (or create) a named user counter.
    pub fn counter(&self, name: &str) -> Counter {
        self.counters.get(name)
    }

    /// Fetch (or create) a named user histogram — record per-group or
    /// per-record distributions into it (e.g. candidate counts); snapshots
    /// land in [`crate::JobMetrics::histograms`]. Like counters, values
    /// recorded by attempts that later fail and retry are not rolled back.
    pub fn histogram(&self, name: &str) -> Histogram {
        self.histograms.get(name)
    }

    /// The task's memory gauge; charge it for data the task holds.
    pub fn memory(&self) -> &MemoryGauge {
        &self.memory
    }

    /// The job's broadcast side-data cache.
    pub fn cache(&self) -> &Cache {
        &self.cache
    }

    /// Handle to the distributed file system, for loading side files in
    /// `setup` (as Hadoop tasks read distributed-cache files).
    pub fn dfs(&self) -> &Dfs {
        &self.dfs
    }

    /// Human-readable task label for error messages.
    pub fn label(&self) -> String {
        match self.phase {
            Phase::Map => format!("map-{}", self.task_id),
            Phase::Reduce => format!("reduce-{}", self.task_id),
        }
    }

    /// Engine-internal: set the current input path.
    pub(crate) fn set_input_path(&mut self, path: &str) {
        self.input_path.clear();
        self.input_path.push_str(path);
    }

    /// Engine-internal: share the job-wide histogram registry.
    pub(crate) fn set_histograms(&mut self, histograms: Histograms) {
        self.histograms = histograms;
    }
}

/// Output collector: map and reduce functions emit `(key, value)` pairs
/// through this trait (Hadoop's `context.write`).
pub trait Emit<K, V> {
    /// Emit one pair.
    fn emit(&mut self, key: K, value: V) -> Result<()>;
}

/// An [`Emit`] implementation that collects pairs into a vector — useful in
/// tests and for driving mappers outside the engine.
#[derive(Debug, Default)]
pub struct VecEmitter<K, V> {
    /// Collected pairs.
    pub pairs: Vec<(K, V)>,
}

impl<K, V> VecEmitter<K, V> {
    /// An empty collector.
    pub fn new() -> Self {
        VecEmitter { pairs: Vec::new() }
    }
}

impl<K, V> Emit<K, V> for VecEmitter<K, V> {
    fn emit(&mut self, key: K, value: V) -> Result<()> {
        self.pairs.push((key, value));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> TaskContext {
        TaskContext::new(
            Phase::Map,
            3,
            1,
            4,
            Counters::new(),
            MemoryGauge::unlimited("t"),
            Cache::new(),
            Dfs::new(1, 64),
        )
    }

    #[test]
    fn labels_and_counters() {
        let c = ctx();
        assert_eq!(c.label(), "map-3");
        c.counter("x").add(2);
        assert_eq!(c.counter("x").get(), 2);
    }

    #[test]
    fn histograms_are_shared_cells() {
        let c = ctx();
        c.histogram("h").record(4.0);
        c.histogram("h").record(2.0);
        let snap = c.histogram("h").snapshot();
        assert_eq!(snap.count, 2);
        assert_eq!(snap.max, 4.0);
    }

    #[test]
    fn input_path_updates() {
        let mut c = ctx();
        assert_eq!(c.input_path, "");
        c.set_input_path("/data/records");
        assert_eq!(c.input_path, "/data/records");
        c.set_input_path("/data/pairs");
        assert_eq!(c.input_path, "/data/pairs");
    }

    #[test]
    fn vec_emitter_collects() {
        let mut e = VecEmitter::new();
        e.emit(1u32, "a".to_string()).unwrap();
        e.emit(2u32, "b".to_string()).unwrap();
        assert_eq!(e.pairs.len(), 2);
    }
}
