//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this vendors the
//! subset of proptest the workspace's property tests use: the
//! [`proptest!`] macro, [`Strategy`] with `prop_map` / `prop_filter` /
//! `boxed`, range and regex-literal strategies, `any::<T>()`,
//! [`collection::vec`] / [`collection::btree_set`], tuple strategies,
//! [`Just`], [`prop_oneof!`], and the `prop_assert*` macros.
//!
//! Differences from real proptest, by design:
//! * Cases are generated from a seed derived deterministically from the
//!   test name and case index, so failures reproduce exactly on re-run.
//! * There is **no shrinking**: a failure reports the complete generated
//!   inputs (they are small by construction in this workspace). The
//!   differential harness in `crates/core/tests/differential.rs` does its
//!   own delta-debugging minimization instead.
//! * Regex strategies support the shapes used here: `atom{m,n}` where
//!   `atom` is `.` or a character class like `[a-zA-Z0-9 ]`.

use std::collections::BTreeSet;
use std::fmt::Debug;
use std::marker::PhantomData;

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

// ---------------------------------------------------------------------------
// runner plumbing
// ---------------------------------------------------------------------------

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed (or rejected) test case.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// A failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }

    /// Alias of [`TestCaseError::fail`] kept for API compatibility.
    pub fn reject(msg: impl Into<String>) -> Self {
        Self::fail(msg)
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// The random source strategies draw from.
pub struct TestRng(StdRng);

impl TestRng {
    /// Deterministic generator for `(test name, case index)`.
    pub fn for_case(name: &str, case: u32) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(h ^ (u64::from(case) << 32) ^ u64::from(case)))
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    /// Uniform value in `0..n` (`n > 0`).
    pub fn below(&mut self, n: usize) -> usize {
        use rand::Rng;
        self.0.random_range(0..n)
    }
}

/// Drive one property: `config.cases` deterministic cases of
/// generate-then-check. Panics (failing the enclosing `#[test]`) on the
/// first case whose check fails or panics, reporting the generated inputs.
pub fn run_proptest<V, G, F>(name: &str, config: &ProptestConfig, generate: G, check: F)
where
    V: Debug,
    G: Fn(&mut TestRng) -> V,
    F: Fn(V) -> Result<(), TestCaseError> + std::panic::RefUnwindSafe,
{
    for case in 0..config.cases {
        let mut rng = TestRng::for_case(name, case);
        let value = generate(&mut rng);
        let described = format!("{value:?}");
        let outcome =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| check(value)));
        let failure = match outcome {
            Ok(Ok(())) => continue,
            Ok(Err(e)) => e.to_string(),
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<String>()
                    .map(String::as_str)
                    .or_else(|| payload.downcast_ref::<&str>().copied())
                    .unwrap_or("panic");
                format!("panic: {msg}")
            }
        };
        panic!(
            "proptest `{name}` failed at case {case}/{}:\n  inputs: {described}\n  {failure}",
            config.cases
        );
    }
}

// ---------------------------------------------------------------------------
// Strategy and combinators
// ---------------------------------------------------------------------------

/// A recipe for generating random values of `Value`.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        U: Debug,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Discard generated values failing `pred` (resampling a bounded
    /// number of times before giving up).
    fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason,
            pred,
        }
    }

    /// Type-erase the strategy (needed by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    U: Debug,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 consecutive samples: {}", self.reason)
    }
}

/// Strategy producing one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among type-erased alternatives ([`prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T: Debug> Union<T> {
    /// Build from the alternatives (must be non-empty).
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len());
        self.arms[i].generate(rng)
    }
}

// ---------------------------------------------------------------------------
// primitive strategies: ranges, any, regex literals, tuples
// ---------------------------------------------------------------------------

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                use rand::Rng;
                rng.0.random_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                use rand::Rng;
                rng.0.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        use rand::Rng;
        rng.0.random_range(self.clone())
    }
}

/// Types with a full-range default strategy (see [`any`]).
pub trait Arbitrary: Debug + Sized {
    /// Generate an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Mix raw bit patterns (covering subnormals, infinities, NaN —
        // callers filter what they can't accept) with tame magnitudes.
        match rng.below(4) {
            0 => f64::from_bits(rng.next_u64()),
            1 => (rng.next_u64() as f64 / 2f64.powi(64)) * 2e6 - 1e6,
            2 => rng.next_u64() as f64 / 2f64.powi(64),
            _ => (rng.next_u64() % 1000) as f64,
        }
    }
}

/// The default full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

/// See [`any`].
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

// --- regex-literal strategies ----------------------------------------------

/// The parsed form of a supported pattern: an alphabet repeated `lo..=hi`
/// times.
struct Pattern {
    alphabet: Vec<char>,
    lo: usize,
    hi: usize,
}

/// Characters `.` stands for: printable ASCII plus a few multi-byte
/// scalars so UTF-8 codec paths get exercised. Excludes `\n`, as in real
/// proptest.
fn dot_alphabet() -> Vec<char> {
    let mut chars: Vec<char> = (0x20u8..=0x7e).map(char::from).collect();
    chars.extend(['é', 'ß', 'λ', '中', '🦀']);
    chars
}

fn parse_class(body: &str) -> Vec<char> {
    let items: Vec<char> = body.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < items.len() {
        if i + 2 < items.len() && items[i + 1] == '-' {
            let (lo, hi) = (items[i], items[i + 2]);
            assert!(lo <= hi, "bad class range {lo}-{hi}");
            out.extend((lo..=hi).filter(|c| *c != '\n'));
            i += 3;
        } else {
            out.push(items[i]);
            i += 1;
        }
    }
    assert!(!out.is_empty(), "empty character class [{body}]");
    out
}

fn parse_pattern(pattern: &str) -> Pattern {
    let (atom, rest) = if let Some(rest) = pattern.strip_prefix('.') {
        (dot_alphabet(), rest)
    } else if let Some(after) = pattern.strip_prefix('[') {
        let close = after.find(']').unwrap_or_else(|| {
            panic!("unclosed character class in pattern {pattern:?}")
        });
        (parse_class(&after[..close]), &after[close + 1..])
    } else {
        // No regex atom: treat the whole pattern as a literal string.
        return Pattern {
            alphabet: Vec::new(),
            lo: 0,
            hi: 0,
        };
    };
    let body = rest
        .strip_prefix('{')
        .and_then(|r| r.strip_suffix('}'))
        .unwrap_or_else(|| {
            panic!("unsupported pattern {pattern:?}: expected atom{{m,n}}")
        });
    let (lo, hi) = body
        .split_once(',')
        .unwrap_or_else(|| panic!("unsupported repetition in {pattern:?}"));
    Pattern {
        alphabet: atom,
        lo: lo.trim().parse().expect("repetition lower bound"),
        hi: hi.trim().parse().expect("repetition upper bound"),
    }
}

impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let p = parse_pattern(self);
        if p.alphabet.is_empty() {
            return (*self).to_string();
        }
        let len = p.lo + rng.below(p.hi - p.lo + 1);
        (0..len)
            .map(|_| p.alphabet[rng.below(p.alphabet.len())])
            .collect()
    }
}

// --- tuples ----------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

// ---------------------------------------------------------------------------
// collections
// ---------------------------------------------------------------------------

/// Collection-size specification (`n`, `a..b`, or `a..=b`).
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // inclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        let (lo, hi) = r.into_inner();
        assert!(lo <= hi, "empty size range");
        SizeRange { lo, hi }
    }
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        self.lo + rng.below(self.hi - self.lo + 1)
    }
}

/// Collection strategies.
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};
    use std::collections::BTreeSet;
    use std::fmt::Debug;

    /// `Vec`s of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `BTreeSet`s with a target size drawn from `size` (duplicates may
    /// make the result smaller, as in real proptest).
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord + Debug,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord + Debug,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.sample(rng);
            let mut out = BTreeSet::new();
            let mut attempts = 0;
            while out.len() < target && attempts < 10 * target + 20 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

// keep the name available at the root too (real proptest exposes both)
pub use collection::vec as prop_vec;

// ---------------------------------------------------------------------------
// macros
// ---------------------------------------------------------------------------

/// Define `#[test]` functions that run a property over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
macro_rules! __proptest_body {
    (($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            $crate::run_proptest(
                stringify!($name),
                &config,
                |rng| { ($($crate::Strategy::generate(&($strat), rng),)+) },
                |($($arg,)+)| -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                },
            );
        }
    )*};
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fail the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{}: {:?} != {:?}",
            format!($($fmt)+),
            l,
            r
        );
    }};
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// The glob-import surface: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestCaseError,
    };

    /// Namespace matching `proptest::prelude::prop::*`.
    pub mod prop {
        pub use crate::collection;
    }
}

// Silence the unused-import lint for the BTreeSet import above (used in
// the collection module through the re-export path).
#[allow(unused_imports)]
use BTreeSet as _BTreeSetUsed;

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn patterns_generate_within_spec() {
        let mut rng = crate::TestRng::for_case("patterns", 0);
        for _ in 0..200 {
            let s = crate::Strategy::generate(&"[a-c ]{0,10}", &mut rng);
            assert!(s.chars().count() <= 10);
            assert!(s.chars().all(|c| matches!(c, 'a'..='c' | ' ')));
            let t = crate::Strategy::generate(&".{1,5}", &mut rng);
            let n = t.chars().count();
            assert!((1..=5).contains(&n), "len {n}: {t:?}");
            assert!(!t.contains('\n'));
        }
    }

    #[test]
    fn determinism_across_runs() {
        let a = crate::Strategy::generate(
            &crate::collection::vec(0u32..100, 5..10),
            &mut crate::TestRng::for_case("det", 3),
        );
        let b = crate::Strategy::generate(
            &crate::collection::vec(0u32..100, 5..10),
            &mut crate::TestRng::for_case("det", 3),
        );
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_generates_and_checks(
            v in prop::collection::vec(any::<u32>(), 0..8),
            x in 1usize..10,
            f in prop_oneof![Just(0.5f64), Just(1.0)],
        ) {
            prop_assert!(v.len() < 8);
            prop_assert!(x >= 1 && x < 10);
            prop_assert_eq!(f, f, "f compares to itself");
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(s in "[a-b]{2,4}") {
            prop_assert!((2..=4).contains(&s.len()));
        }
    }
}
