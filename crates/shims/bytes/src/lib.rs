//! Offline stand-in for the `bytes` crate: just [`Bytes`], an immutable,
//! cheaply cloneable (`Arc`-backed) byte buffer that derefs to `[u8]`.

use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes { data: data.into() }
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: v.into() }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl From<&str> for Bytes {
    fn from(v: &str) -> Self {
        Bytes::copy_from_slice(v.as_bytes())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.data[..] == other.data[..]
    }
}

impl Eq for Bytes {}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_cheap_clone() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        let c = b.clone();
        assert_eq!(&b[..], &[1, 2, 3]);
        assert_eq!(b, c);
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
        assert!(Bytes::new().is_empty());
    }
}
