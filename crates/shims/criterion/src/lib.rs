//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this vendors the
//! subset of the criterion API the workspace's benches use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`] /
//! [`BenchmarkGroup::bench_with_input`] / `sample_size`, [`Bencher::iter`]
//! / [`Bencher::iter_with_setup`], [`BenchmarkId`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! There is no statistics engine: each routine runs `sample_size`
//! iterations (default 10) and the mean wall-clock time is printed. That
//! is enough for the paper-figure drivers, which only need relative
//! ordering, and it keeps `cargo bench` runnable offline.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity, re-exported from `std::hint`.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Label for one benchmark within a group: `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_id/parameter`.
    pub fn new(function_id: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_id.into(), parameter),
        }
    }

    /// Just a parameter, no function id.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// Runs the measured closure and accumulates elapsed time.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` over the configured number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            std_black_box(routine());
        }
        self.elapsed += start.elapsed();
    }

    /// Time `routine` on fresh `setup()` output each iteration; setup time
    /// is excluded from the measurement.
    pub fn iter_with_setup<I, O, S, R>(&mut self, mut setup: S, mut routine: R)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.iterations {
            let input = setup();
            let start = Instant::now();
            std_black_box(routine(input));
            self.elapsed += start.elapsed();
        }
    }
}

/// A named set of related benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set how many iterations each routine runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, label: &str, mut f: F) {
        let mut b = Bencher {
            iterations: self.sample_size as u64,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per_iter = if b.iterations > 0 {
            b.elapsed / b.iterations as u32
        } else {
            Duration::ZERO
        };
        println!(
            "{}/{}: {:.3?}/iter over {} iters",
            self.name, label, per_iter, b.iterations
        );
    }

    /// Benchmark a closure.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(&id.label, f);
        self
    }

    /// Benchmark a closure receiving a borrowed input.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        self.run(&id.label, |b| f(b, input));
        self
    }

    /// End the group (no-op; exists for API compatibility).
    pub fn finish(&mut self) {}
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            name: name.into(),
            sample_size,
            _criterion: self,
        }
    }

    /// Benchmark a single closure outside any group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group(name.to_string())
            .bench_function("bench", f);
        self
    }

    /// Parse command-line configuration (accepted and ignored).
    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// Collect benchmark functions under a group name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_routines_and_counts_iterations() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(3);
        let mut calls = 0u64;
        g.bench_function("f", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 3);
        let mut setups = 0u64;
        g.bench_with_input(BenchmarkId::new("g", 7), &5u32, |b, x| {
            b.iter_with_setup(
                || {
                    setups += 1;
                    *x
                },
                |v| v * 2,
            )
        });
        assert_eq!(setups, 3);
        g.finish();
    }
}
