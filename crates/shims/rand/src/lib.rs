//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so this vendors the
//! API surface the workspace actually uses: [`rngs::StdRng`] seeded with
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] sampling methods
//! `random`, `random_range`, and `random_bool`. The generator is
//! xoshiro256++ seeded via SplitMix64 — deterministic per seed, with
//! statistical quality far beyond what the synthetic-data generators and
//! property tests need.

/// Core random source: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling conveniences over any [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly random value of `T` (`f64` in `[0, 1)`, integers over
    /// their full range, `bool` fair).
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniformly random value in `range` (`a..b` or `a..=b`).
    ///
    /// # Panics
    /// Panics when the range is empty.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Alias of [`Rng`] matching the extension-trait import some modules use.
pub use Rng as RngExt;

/// Types with a canonical uniform distribution.
pub trait Standard {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges a value can be drawn from.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Element types uniform ranges can be built over. A single generic
/// `SampleRange` impl hangs off this trait (rather than one impl per
/// integer type) so that integer-literal ranges unify with the use site —
/// e.g. `slice[rng.random_range(0..n)]` infers `usize`.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform value in `lo..hi` (`hi` exclusive unless `inclusive`).
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool)
        -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + u128::from(inclusive);
                let v = uniform_u128_below(rng, span);
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, _inclusive: bool)
        -> Self {
        lo + f64::sample(rng) * (hi - lo)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "empty range");
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "empty range");
        T::sample_uniform(rng, lo, hi, true)
    }
}

/// Uniform value in `0..span` by rejection sampling (no modulo bias).
fn uniform_u128_below<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span == 1 {
        return 0;
    }
    // All spans in practice fit u64; sample 64 bits and reject the biased
    // tail of the modulus.
    let span64 = span as u64;
    let zone = u64::MAX - (u64::MAX % span64);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return u128::from(v % span64);
        }
    }
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the full state.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(42);
            (0..10).map(|_| r.random()).collect()
        };
        let b: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(42);
            (0..10).map(|_| r.random()).collect()
        };
        let c: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(43);
            (0..10).map(|_| r.random()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.random_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = r.random_range(-3i64..=3);
            assert!((-3..=3).contains(&w));
            let f: f64 = r.random();
            assert!((0.0..1.0).contains(&f));
        }
        assert_eq!(r.random_range(5u32..6), 5);
        assert_eq!(r.random_range(9usize..=9), 9);
    }

    #[test]
    fn range_sampling_is_roughly_uniform() {
        let mut r = StdRng::seed_from_u64(11);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[r.random_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "skewed: {counts:?}");
        }
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(5);
        let hits = (0..100_000).filter(|_| r.random_bool(0.25)).count();
        assert!((23_000..27_000).contains(&hits), "got {hits}");
        assert!((0..1000).all(|_| !r.random_bool(0.0)));
        assert!((0..1000).all(|_| r.random_bool(1.0)));
    }
}
