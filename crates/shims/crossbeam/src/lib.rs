//! Offline stand-in for the `crossbeam` crate: only `thread::scope`, built
//! on `std::thread::scope` (stable since Rust 1.63). The crossbeam API
//! passes a scope handle to each spawned closure so threads can spawn
//! nested work; the workspace never nests, so the closure receives a
//! placeholder handle.

/// Scoped threads.
pub mod thread {
    use std::any::Any;

    /// Handle passed to spawned closures (crossbeam allows nested spawns
    /// through it; this stand-in does not support nesting).
    pub struct NestedScope(());

    /// The scope handle given to the `scope` closure.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread inside the scope. The closure's argument exists
        /// for crossbeam signature compatibility only.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&NestedScope) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            self.inner.spawn(move || f(&NestedScope(())))
        }
    }

    /// Run `f` with a scope handle; all spawned threads are joined before
    /// returning. Returns `Err` with the panic payload if any thread (or
    /// the closure itself) panicked, like crossbeam.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn scope_joins_all_threads() {
        let n = AtomicU32::new(0);
        let r = super::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| n.fetch_add(1, Ordering::SeqCst));
            }
        });
        assert!(r.is_ok());
        assert_eq!(n.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn panics_surface_as_err() {
        let r = super::thread::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }
}
