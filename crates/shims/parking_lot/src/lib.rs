//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the tiny slice of `parking_lot` it actually uses: `Mutex` and
//! `RwLock` with guard-returning (non-poisoning) lock methods. Both wrap
//! the `std::sync` primitives and recover from poisoning by taking the
//! inner value, matching parking_lot's "no poisoning" semantics.

use std::sync::{self, LockResult};

/// A mutual-exclusion lock whose `lock` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// Guard for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

fn unpoison<G>(r: LockResult<G>) -> G {
    match r {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl<T> Mutex<T> {
    /// Create a mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        unpoison(self.inner.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        unpoison(self.inner.lock())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        unpoison(self.inner.get_mut())
    }
}

/// A reader-writer lock whose `read`/`write` return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared-read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        unpoison(self.inner.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        unpoison(self.inner.read())
    }

    /// Acquire an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        unpoison(self.inner.write())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        unpoison(self.inner.get_mut())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }
}
