//! Umbrella crate for the SIGMOD 2010 parallel set-similarity join
//! reproduction: re-exports the workspace crates so examples and
//! integration tests have a single import root.
//!
//! * [`mapreduce`] — the in-process MapReduce engine + simulated DFS.
//! * [`setsim`] — single-node set-similarity kernels and filters.
//! * [`fuzzyjoin`] — the paper's three-stage parallel join.
//! * [`datagen`] — synthetic DBLP/CITESEERX corpora and x-n scaling.

pub use datagen;
pub use fuzzyjoin;
pub use mapreduce;
pub use setsim;
